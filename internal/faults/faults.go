// Package faults provides deterministic, seeded fault injection for the
// Viracocha fabric, workers and storage. A Plan describes what goes wrong —
// per-link message drop/duplication/extra delay, worker crashes at a given
// virtual time, storage read errors — and an Injector compiled from it is
// wired into comm.Network.Send, the worker runtime and the device read path.
// Everything is behind nil-by-default hooks, so the happy path is unchanged.
//
// Probabilistic decisions are keyed by (Seed, link, per-link message index)
// through a splitmix64 hash, so a given plan makes the same decisions on
// every run regardless of goroutine interleaving — under the virtual clock,
// failure scenarios are exactly reproducible.
package faults

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"viracocha/internal/comm"
	"viracocha/internal/grid"
)

// Any is the wildcard for string match fields in rules.
const Any = "*"

// LinkRule applies faults to messages flowing From → To. Empty or "*" match
// fields match everything.
type LinkRule struct {
	// From and To filter on endpoint names ("w0", "scheduler", "client1").
	From, To string
	// Kind filters on the message kind ("wdone", "partial", ...).
	Kind string
	// Drop and Duplicate are per-message probabilities in [0,1]; 1 means
	// every matching message.
	Drop, Duplicate float64
	// Delay is an extra in-flight delay added to every matching message.
	Delay time.Duration
}

// ReadRule injects errors into the storage read path.
type ReadRule struct {
	// Dataset filters on the data set name ("" or "*" = any).
	Dataset string
	// Step and Block filter on the block address; -1 matches any.
	Step, Block int
	// Fail is how many matching reads fail before the rule burns out;
	// Fail < 0 fails every matching read.
	Fail int
}

// DisconRule drops one TCP connection deterministically: after the bridge
// has delivered After frames to the connection named Name (a session ID, or
// Any), the next delivery severs the link instead. Each rule fires once —
// repeat the rule to drop a reconnected session again.
type DisconRule struct {
	Name  string
	After int
}

// TornRule tears one write-ahead-log append mid-record: the Nth append
// (1-based, counted per matched file) to a segment whose path or base name
// matches Path writes only a partial frame and then fails as a power loss
// would. Each rule fires once.
type TornRule struct {
	Path string
	N    int
}

// Plan is a complete, seeded fault scenario.
type Plan struct {
	// Seed drives all probabilistic decisions; the same seed replays the
	// same faults.
	Seed uint64
	// Links are applied in order; the first matching rule decides a
	// message's fate.
	Links []LinkRule
	// Crashes maps worker node names to the virtual time at which the node
	// fail-stops (it stops sending, receiving and heartbeating).
	Crashes map[string]time.Duration
	// Reads are applied in order; the first matching rule with budget left
	// fails the read.
	Reads []ReadRule
	// Corrupts are applied in order; the first matching rule with budget
	// left marks the read's data as corrupted (the device's integrity check
	// fails and it re-reads once).
	Corrupts []ReadRule
	// Consumers maps client endpoint names ("client1", or Any for all) to an
	// extra per-packet processing delay: the slow-consumer scenario for the
	// streaming backpressure path.
	Consumers map[string]time.Duration
	// Lags maps worker node names (or Any for all) to a compute-cost
	// multiplier: every Charge on that node takes factor times as long. A
	// deterministic straggler — slow but alive, heartbeating normally.
	Lags map[string]float64
	// Disconnects are applied in order; the first un-burned matching rule
	// whose frame count has been reached drops the client connection
	// mid-stream (the TCP bridge consults OnConnFrame before each delivery).
	Disconnects []DisconRule
	// Hangs marks connection names (or Any) whose peer goes silent without
	// closing: the bridge treats sends to them as wedged, exercising the
	// write-deadline path deterministically.
	Hangs map[string]bool
	// Recovers maps worker node names to the virtual time at which a crashed
	// node reboots and rejoins the scheduler (requires FTConfig.Rejoin).
	Recovers map[string]time.Duration
	// Flaps maps worker node names to a crash/rejoin half-period: the node
	// crashes after every PERIOD of uptime and reboots PERIOD later, over and
	// over — the host the quarantine machinery exists for.
	Flaps map[string]time.Duration
	// Torns tear WAL appends mid-record; the first un-burned matching rule
	// whose append count is reached fires (the wal package consults
	// OnWALAppend before each write).
	Torns []TornRule
	// FsyncFails are WAL file paths (or base names, or Any) whose next
	// fsync fails with an injected error; each entry burns after one use.
	FsyncFails []string
}

// CrashAt registers a worker crash and returns the plan for chaining.
func (p *Plan) CrashAt(node string, at time.Duration) *Plan {
	if p.Crashes == nil {
		p.Crashes = map[string]time.Duration{}
	}
	p.Crashes[node] = at
	return p
}

// RecoverAt registers a worker reboot-and-rejoin at virtual time at and
// returns the plan for chaining. Pair it with CrashAt for a crash→recover
// timeline.
func (p *Plan) RecoverAt(node string, at time.Duration) *Plan {
	if p.Recovers == nil {
		p.Recovers = map[string]time.Duration{}
	}
	p.Recovers[node] = at
	return p
}

// Flap registers a crash/rejoin cycle with half-period period for a worker
// node and returns the plan for chaining: the node runs for period, crashes,
// reboots period later, and repeats.
func (p *Plan) Flap(node string, period time.Duration) *Plan {
	if p.Flaps == nil {
		p.Flaps = map[string]time.Duration{}
	}
	p.Flaps[node] = period
	return p
}

// SlowConsumer registers a per-packet consumption delay for a client
// endpoint ("client1", or Any) and returns the plan for chaining.
func (p *Plan) SlowConsumer(endpoint string, d time.Duration) *Plan {
	if p.Consumers == nil {
		p.Consumers = map[string]time.Duration{}
	}
	p.Consumers[endpoint] = d
	return p
}

// Lag registers a compute-cost multiplier for a worker node ("w1", or Any)
// and returns the plan for chaining. factor 1 is a no-op; factor 4 makes
// every computation on the node take four times as long.
func (p *Plan) Lag(node string, factor float64) *Plan {
	if p.Lags == nil {
		p.Lags = map[string]float64{}
	}
	p.Lags[node] = factor
	return p
}

// Disconnect registers a deterministic mid-stream connection drop after n
// delivered frames on the connection named name (a session ID, or Any) and
// returns the plan for chaining.
func (p *Plan) Disconnect(name string, after int) *Plan {
	p.Disconnects = append(p.Disconnects, DisconRule{Name: name, After: after})
	return p
}

// Hang marks a connection name (or Any) as an accepted-but-silent peer and
// returns the plan for chaining.
func (p *Plan) Hang(name string) *Plan {
	if p.Hangs == nil {
		p.Hangs = map[string]bool{}
	}
	p.Hangs[name] = true
	return p
}

// TearAppend registers a torn WAL append — the nth append (1-based) to a
// segment file matching path is cut mid-record — and returns the plan for
// chaining.
func (p *Plan) TearAppend(path string, n int) *Plan {
	p.Torns = append(p.Torns, TornRule{Path: path, N: n})
	return p
}

// FailFsync registers a one-shot fsync failure for WAL files matching path
// (or Any) and returns the plan for chaining.
func (p *Plan) FailFsync(path string) *Plan {
	p.FsyncFails = append(p.FsyncFails, path)
	return p
}

// ParseRule adds one textual fault rule to the plan (the -fault flag of
// cmd/viracocha-server). Formats:
//
//	crash:NODE@DUR           fail-stop NODE at clock time DUR ("crash:w1@3s")
//	drop:FROM>TO:KIND:PROB   drop matching messages ("drop:w1>scheduler:wdone:1")
//	dup:FROM>TO:KIND:PROB    duplicate matching messages
//	delay:FROM>TO:KIND:DUR   delay matching messages
//	read:DATASET:STEP:BLOCK:N  fail N matching reads (N<0: all; STEP/BLOCK -1: any)
//	corrupt:DATASET:STEP:BLOCK:N  corrupt N matching reads (device re-reads once)
//	slow:ENDPOINT@DUR        delay ENDPOINT's packet consumption by DUR ("slow:client1@2s")
//	lag:NODE:FACTOR          multiply NODE's compute cost by FACTOR ("lag:w1:4")
//	discon:NODE:AFTER_MSGS   drop NODE's connection after AFTER_MSGS delivered frames ("discon:sess-1:5")
//	hang:NODE                NODE's peer accepts but never drains ("hang:sess-1")
//	recover:NODE@DUR         reboot a crashed NODE at clock time DUR ("recover:w1@5s")
//	flap:NODE:PERIOD         crash/rejoin NODE every PERIOD ("flap:w1:500ms")
//	torn:PATH:N              tear the Nth WAL append to PATH mid-record ("torn:*:5")
//	fsyncfail:PATH           fail PATH's next WAL fsync once ("fsyncfail:*")
//
// FROM, TO, KIND, DATASET, ENDPOINT, NODE and PATH accept "*" as a wildcard.
func (p *Plan) ParseRule(spec string) error {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("faults: rule %q: missing ':'", spec)
	}
	parseLink := func(rest string, n int) (from, to string, parts []string, err error) {
		fields := strings.Split(rest, ":")
		if len(fields) != n {
			return "", "", nil, fmt.Errorf("faults: rule %q: want %d fields, got %d", spec, n, len(fields))
		}
		from, to, ok := strings.Cut(fields[0], ">")
		if !ok {
			return "", "", nil, fmt.Errorf("faults: rule %q: link must be FROM>TO", spec)
		}
		return from, to, fields[1:], nil
	}
	switch kind {
	case "crash":
		node, at, ok := strings.Cut(rest, "@")
		if !ok {
			return fmt.Errorf("faults: rule %q: crash must be crash:NODE@DUR", spec)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return fmt.Errorf("faults: rule %q: %w", spec, err)
		}
		p.CrashAt(node, d)
	case "drop", "dup":
		from, to, fields, err := parseLink(rest, 3)
		if err != nil {
			return err
		}
		prob, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("faults: rule %q: bad probability %q", spec, fields[1])
		}
		r := LinkRule{From: from, To: to, Kind: fields[0]}
		if kind == "drop" {
			r.Drop = prob
		} else {
			r.Duplicate = prob
		}
		p.Links = append(p.Links, r)
	case "delay":
		from, to, fields, err := parseLink(rest, 3)
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return fmt.Errorf("faults: rule %q: %w", spec, err)
		}
		p.Links = append(p.Links, LinkRule{From: from, To: to, Kind: fields[0], Delay: d})
	case "read", "corrupt":
		fields := strings.Split(rest, ":")
		if len(fields) != 4 {
			return fmt.Errorf("faults: rule %q: %s must be %s:DATASET:STEP:BLOCK:N", spec, kind, kind)
		}
		step, err1 := strconv.Atoi(fields[1])
		block, err2 := strconv.Atoi(fields[2])
		n, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("faults: rule %q: STEP, BLOCK and N must be integers", spec)
		}
		r := ReadRule{Dataset: fields[0], Step: step, Block: block, Fail: n}
		if kind == "read" {
			p.Reads = append(p.Reads, r)
		} else {
			p.Corrupts = append(p.Corrupts, r)
		}
	case "slow":
		ep, at, ok := strings.Cut(rest, "@")
		if !ok {
			return fmt.Errorf("faults: rule %q: slow must be slow:ENDPOINT@DUR", spec)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return fmt.Errorf("faults: rule %q: %w", spec, err)
		}
		p.SlowConsumer(ep, d)
	case "lag":
		node, f, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("faults: rule %q: lag must be lag:NODE:FACTOR", spec)
		}
		factor, err := strconv.ParseFloat(f, 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("faults: rule %q: bad factor %q", spec, f)
		}
		p.Lag(node, factor)
	case "discon":
		name, n, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("faults: rule %q: discon must be discon:NODE:AFTER_MSGS", spec)
		}
		after, err := strconv.Atoi(n)
		if err != nil || after < 0 {
			return fmt.Errorf("faults: rule %q: bad frame count %q", spec, n)
		}
		p.Disconnect(name, after)
	case "hang":
		if rest == "" {
			return fmt.Errorf("faults: rule %q: hang must be hang:NODE", spec)
		}
		p.Hang(rest)
	case "recover":
		node, at, ok := strings.Cut(rest, "@")
		if !ok || node == "" {
			return fmt.Errorf("faults: rule %q: recover must be recover:NODE@DUR", spec)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return fmt.Errorf("faults: rule %q: %w", spec, err)
		}
		p.RecoverAt(node, d)
	case "flap":
		node, per, ok := strings.Cut(rest, ":")
		if !ok || node == "" {
			return fmt.Errorf("faults: rule %q: flap must be flap:NODE:PERIOD", spec)
		}
		d, err := time.ParseDuration(per)
		if err != nil {
			return fmt.Errorf("faults: rule %q: %w", spec, err)
		}
		if d <= 0 {
			return fmt.Errorf("faults: rule %q: period must be positive", spec)
		}
		p.Flap(node, d)
	case "torn":
		// PATH may itself contain colons, so the count is split off the
		// right-hand end.
		i := strings.LastIndex(rest, ":")
		if i <= 0 {
			return fmt.Errorf("faults: rule %q: torn must be torn:PATH:N", spec)
		}
		path, nstr := rest[:i], rest[i+1:]
		n, err := strconv.Atoi(nstr)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: rule %q: bad append count %q (want >= 1)", spec, nstr)
		}
		p.TearAppend(path, n)
	case "fsyncfail":
		if rest == "" {
			return fmt.Errorf("faults: rule %q: fsyncfail must be fsyncfail:PATH", spec)
		}
		p.FailFsync(rest)
	default:
		return fmt.Errorf("faults: rule %q: unknown kind %q", spec, kind)
	}
	return nil
}

// Injector is a compiled Plan: it implements comm.FaultInjector and the
// storage read-fault hook. The zero Injector (or nil) injects nothing.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	linkSeq    map[string]uint64 // per-link message counter
	readHit    []int             // per-read-rule consumed budget
	corruptHit []int             // per-corrupt-rule consumed budget
	connFrames map[string]int    // per-connection delivered-frame counter
	disconUsed []bool            // per-discon-rule one-shot burn
	walSeq     []int             // per-torn-rule matched-append counter
	tornUsed   []bool            // per-torn-rule one-shot burn
	fsyncUsed  []bool            // per-fsyncfail-rule one-shot burn
}

// New compiles a plan. A nil plan yields a nil injector, which callers treat
// as "no faults".
func New(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{
		plan:       *p,
		linkSeq:    map[string]uint64{},
		readHit:    make([]int, len(p.Reads)),
		corruptHit: make([]int, len(p.Corrupts)),
		connFrames: map[string]int{},
		disconUsed: make([]bool, len(p.Disconnects)),
		walSeq:     make([]int, len(p.Torns)),
		tornUsed:   make([]bool, len(p.Torns)),
		fsyncUsed:  make([]bool, len(p.FsyncFails)),
	}
}

func matchStr(pat, v string) bool { return pat == "" || pat == Any || pat == v }
func matchInt(pat, v int) bool    { return pat < 0 || pat == v }

// OnSend implements comm.FaultInjector: it decides the fate of one message
// entering the from→to link. Decisions are deterministic per (seed, link,
// message index on that link).
func (in *Injector) OnSend(from, to string, m comm.Message) comm.SendFault {
	if in == nil || len(in.plan.Links) == 0 {
		return comm.SendFault{}
	}
	link := from + "\x00" + to
	in.mu.Lock()
	seq := in.linkSeq[link]
	in.linkSeq[link] = seq + 1
	in.mu.Unlock()
	for _, r := range in.plan.Links {
		if !matchStr(r.From, from) || !matchStr(r.To, to) || !matchStr(r.Kind, m.Kind) {
			continue
		}
		var f comm.SendFault
		f.ExtraDelay = r.Delay
		if r.Drop > 0 && in.roll(link, seq, 1) < r.Drop {
			f.Drop = true
		}
		if r.Duplicate > 0 && in.roll(link, seq, 2) < r.Duplicate {
			f.Duplicate = true
		}
		return f
	}
	return comm.SendFault{}
}

// CrashTime reports the planned fail-stop time of a node.
func (in *Injector) CrashTime(node string) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	at, ok := in.plan.Crashes[node]
	return at, ok
}

// RecoverTime reports the planned reboot-and-rejoin time of a node.
func (in *Injector) RecoverTime(node string) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	at, ok := in.plan.Recovers[node]
	return at, ok
}

// FlapPeriod reports the planned crash/rejoin half-period of a node.
func (in *Injector) FlapPeriod(node string) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	d, ok := in.plan.Flaps[node]
	return d, ok
}

// Seed reports the plan's seed, so the runtime can derive other reproducible
// decisions (scheduler backoff jitter) from the same scenario seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.plan.Seed
}

// OnRead is the storage hook: a non-nil error fails the read of id.
func (in *Injector) OnRead(id grid.BlockID) error {
	if in == nil || len(in.plan.Reads) == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.plan.Reads {
		if !matchStr(r.Dataset, id.Dataset) || !matchInt(r.Step, id.Step) || !matchInt(r.Block, id.Block) {
			continue
		}
		if r.Fail >= 0 && in.readHit[i] >= r.Fail {
			continue
		}
		in.readHit[i]++
		return fmt.Errorf("faults: injected read error for %s step %d block %d", id.Dataset, id.Step, id.Block)
	}
	return nil
}

// OnCorrupt is the storage integrity hook: true marks the fetched data of id
// as corrupted, making the device's checksum verification fail.
func (in *Injector) OnCorrupt(id grid.BlockID) bool {
	if in == nil || len(in.plan.Corrupts) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.plan.Corrupts {
		if !matchStr(r.Dataset, id.Dataset) || !matchInt(r.Step, id.Step) || !matchInt(r.Block, id.Block) {
			continue
		}
		if r.Fail >= 0 && in.corruptHit[i] >= r.Fail {
			continue
		}
		in.corruptHit[i]++
		return true
	}
	return false
}

// ConsumerDelay reports the planned per-packet consumption delay for a
// client endpoint (exact name first, then the Any wildcard).
func (in *Injector) ConsumerDelay(endpoint string) time.Duration {
	if in == nil || len(in.plan.Consumers) == 0 {
		return 0
	}
	if d, ok := in.plan.Consumers[endpoint]; ok {
		return d
	}
	return in.plan.Consumers[Any]
}

// ComputeFactor reports the planned compute-cost multiplier for a worker
// node (exact name first, then the Any wildcard; 1 means full speed).
func (in *Injector) ComputeFactor(node string) float64 {
	if in == nil || len(in.plan.Lags) == 0 {
		return 1
	}
	if f, ok := in.plan.Lags[node]; ok && f > 0 {
		return f
	}
	if f, ok := in.plan.Lags[Any]; ok && f > 0 {
		return f
	}
	return 1
}

// OnConnFrame advances the delivered-frame counter of the connection named
// name and reports whether a disconnect rule fires here: the TCP bridge
// consults it before each delivery and, on true, severs the connection
// instead. Each rule burns after firing once; the counter keeps running
// across reconnects, so a second identical rule drops the resumed stream at
// a later absolute frame count.
func (in *Injector) OnConnFrame(name string) bool {
	if in == nil || len(in.plan.Disconnects) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	count := in.connFrames[name]
	in.connFrames[name] = count + 1
	for i, r := range in.plan.Disconnects {
		if in.disconUsed[i] || !matchStr(r.Name, name) {
			continue
		}
		if count >= r.After {
			in.disconUsed[i] = true
			return true
		}
	}
	return false
}

// matchPath matches a rule path against a file path: exact, wildcard, or
// base-name match, so rules can name "wal-00000001.log" without knowing the
// WAL directory.
func matchPath(pat, path string) bool {
	return matchStr(pat, path) || pat == filepath.Base(path)
}

// OnWALAppend is the wal package's torn-write hook: it advances each matching
// torn rule's append counter and reports whether one fires here, in which
// case the append is cut mid-record and the log fails as a power loss would.
func (in *Injector) OnWALAppend(path string) bool {
	if in == nil || len(in.plan.Torns) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	fire := false
	for i, r := range in.plan.Torns {
		if !matchPath(r.Path, path) {
			continue
		}
		in.walSeq[i]++
		if !in.tornUsed[i] && in.walSeq[i] >= r.N {
			in.tornUsed[i] = true
			fire = true
		}
	}
	return fire
}

// OnWALSync is the wal package's fsync hook: the first un-burned matching
// fsyncfail rule fails this flush with an injected error.
func (in *Injector) OnWALSync(path string) error {
	if in == nil || len(in.plan.FsyncFails) == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, pat := range in.plan.FsyncFails {
		if in.fsyncUsed[i] || !matchPath(pat, path) {
			continue
		}
		in.fsyncUsed[i] = true
		return fmt.Errorf("faults: injected fsync failure for %s", filepath.Base(path))
	}
	return nil
}

// Hanged reports whether the connection named name is planned as an
// accepted-but-silent peer (exact name first, then the Any wildcard).
func (in *Injector) Hanged(name string) bool {
	if in == nil || len(in.plan.Hangs) == 0 {
		return false
	}
	return in.plan.Hangs[name] || in.plan.Hangs[Any]
}

// roll returns a deterministic uniform value in [0,1) for decision slot
// `salt` of message `seq` on `link`.
func (in *Injector) roll(link string, seq, salt uint64) float64 {
	h := in.plan.Seed
	for i := 0; i < len(link); i++ {
		h = (h ^ uint64(link[i])) * 0x100000001b3
	}
	h ^= seq*0x9e3779b97f4a7c15 + salt
	return float64(splitmix64(h)>>11) / float64(1<<53)
}

// Mix64 exposes the splitmix64 finalizer: a strong, stateless 64-bit mixer.
// Callers that need seeded-but-reproducible pseudo-random values outside the
// injector (the scheduler's backoff jitter) hash a (seed, counter) pair
// through it instead of keeping their own generator state.
func Mix64(x uint64) uint64 { return splitmix64(x) }

// splitmix64 is the finalizer of the splitmix64 PRNG: a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mutate flips up to n bytes of data in place, choosing positions and values
// from the seeded generator — the codec fuzzer uses it to derive
// fault-plan-style corruptions of valid frames deterministically.
func Mutate(seed uint64, data []byte, n int) {
	if len(data) == 0 {
		return
	}
	h := seed
	for i := 0; i < n; i++ {
		h = splitmix64(h)
		pos := int(h % uint64(len(data)))
		h = splitmix64(h)
		data[pos] ^= byte(h)
	}
}

var _ comm.FaultInjector = (*Injector)(nil)

package faults

import (
	"testing"
	"time"

	"viracocha/internal/grid"
)

func TestParseCorruptRule(t *testing.T) {
	p := &Plan{Seed: 1}
	if err := p.ParseRule("corrupt:tiny:0:1:2"); err != nil {
		t.Fatal(err)
	}
	if len(p.Corrupts) != 1 || len(p.Reads) != 0 {
		t.Fatalf("plan = %+v, want one corrupt rule", p)
	}
	r := p.Corrupts[0]
	if r.Dataset != "tiny" || r.Step != 0 || r.Block != 1 || r.Fail != 2 {
		t.Fatalf("rule = %+v", r)
	}
	if err := p.ParseRule("corrupt:tiny:0:1"); err == nil {
		t.Error("short corrupt spec accepted")
	}
	if err := p.ParseRule("corrupt:tiny:x:1:2"); err == nil {
		t.Error("non-integer corrupt spec accepted")
	}
}

func TestParseSlowConsumerRule(t *testing.T) {
	p := &Plan{Seed: 1}
	if err := p.ParseRule("slow:client1@2s"); err != nil {
		t.Fatal(err)
	}
	if d := p.Consumers["client1"]; d != 2*time.Second {
		t.Fatalf("consumer delay = %v, want 2s", d)
	}
	if err := p.ParseRule("slow:client1"); err == nil {
		t.Error("slow spec without @DUR accepted")
	}
	if err := p.ParseRule("slow:client1@later"); err == nil {
		t.Error("slow spec with a bad duration accepted")
	}
}

func TestOnCorruptBurnsBudget(t *testing.T) {
	p := &Plan{Seed: 1, Corrupts: []ReadRule{{Dataset: "tiny", Step: -1, Block: 3, Fail: 2}}}
	in := New(p)
	hit := grid.BlockID{Dataset: "tiny", Step: 5, Block: 3}
	miss := grid.BlockID{Dataset: "tiny", Step: 0, Block: 0}
	if in.OnCorrupt(miss) {
		t.Fatal("non-matching read corrupted")
	}
	if !in.OnCorrupt(hit) || !in.OnCorrupt(hit) {
		t.Fatal("matching reads not corrupted while budget lasts")
	}
	if in.OnCorrupt(hit) {
		t.Fatal("rule fired past its budget")
	}
	// Fail < 0: corrupts every matching read, forever.
	always := New(&Plan{Corrupts: []ReadRule{{Dataset: Any, Step: -1, Block: -1, Fail: -1}}})
	for i := 0; i < 5; i++ {
		if !always.OnCorrupt(hit) {
			t.Fatal("unlimited rule burned out")
		}
	}
	var nilInj *Injector
	if nilInj.OnCorrupt(hit) {
		t.Fatal("nil injector corrupted a read")
	}
}

func TestConsumerDelayLookup(t *testing.T) {
	in := New((&Plan{Seed: 1}).SlowConsumer("client2", time.Second))
	if d := in.ConsumerDelay("client2"); d != time.Second {
		t.Fatalf("exact match = %v, want 1s", d)
	}
	if d := in.ConsumerDelay("client1"); d != 0 {
		t.Fatalf("unmatched endpoint = %v, want 0", d)
	}
	wild := New((&Plan{Seed: 1}).SlowConsumer(Any, time.Minute).SlowConsumer("client3", time.Second))
	if d := wild.ConsumerDelay("client3"); d != time.Second {
		t.Fatalf("exact match must win over the wildcard, got %v", d)
	}
	if d := wild.ConsumerDelay("client9"); d != time.Minute {
		t.Fatalf("wildcard = %v, want 1m", d)
	}
	var nilInj *Injector
	if nilInj.ConsumerDelay("client1") != 0 {
		t.Fatal("nil injector delayed a consumer")
	}
}

// Package comm is Viracocha's lowest layer (paper §3): it hides the concrete
// transport behind a generic message interface. Two transports are provided,
// mirroring the paper's MPI-within-cluster / TCP-to-client split: an
// in-process Network whose endpoints exchange messages through clock-aware
// queues with a latency/bandwidth cost model, and a TCP framing codec for
// the visualization-client connection. Upper layers only see Message,
// Sender and Receiver.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Message is the generic envelope exchanged between the visualization
// client, the scheduler and the workers.
type Message struct {
	// Kind discriminates the protocol role: "command", "partial", "result",
	// "progress", "error", "ack", "shutdown".
	Kind string
	// Command names the post-processing command this message belongs to.
	Command string
	// ReqID correlates all messages of one request.
	ReqID uint64
	// Seq numbers streamed partial results within a request.
	Seq int
	// Final marks the last message of a request.
	Final bool
	// Params carries string-encoded command parameters and annotations.
	Params map[string]string
	// Payload carries binary data (encoded meshes, blocks).
	Payload []byte
}

// WireSize reports the encoded size of the message, used by transfer cost
// models without forcing an encode. It includes the trailing CRC32-C.
func (m *Message) WireSize() int64 {
	n := 4 + 4 + len(m.Kind) + 4 + len(m.Command) + 8 + 4 + 1 + 4 + 4 + len(m.Payload) + 4
	for k, v := range m.Params {
		n += 8 + len(k) + len(v)
	}
	return int64(n)
}

// Sender is the outbound half of a transport.
type Sender interface {
	Send(m Message) error
}

// Receiver is the inbound half of a transport. Recv blocks until a message
// arrives; ok is false once the transport is closed and drained.
type Receiver interface {
	Recv() (Message, bool)
}

const frameMagic = 0x56524d47 // "VRMG"

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 30

// castagnoli is the CRC32-C polynomial table used for frame integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a frame whose trailing CRC32-C did not match its
// contents: the frame was corrupted in flight or at rest.
var ErrChecksum = errors.New("comm: frame checksum mismatch")

// Encode serializes the message to the wire format.
func Encode(m Message) []byte {
	buf := make([]byte, 0, m.WireSize())
	var s [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(s[:4], v)
		buf = append(buf, s[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(s[:], v)
		buf = append(buf, s[:]...)
	}
	putStr := func(x string) {
		put32(uint32(len(x)))
		buf = append(buf, x...)
	}
	put32(frameMagic)
	putStr(m.Kind)
	putStr(m.Command)
	put64(m.ReqID)
	put32(uint32(int32(m.Seq)))
	if m.Final {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	put32(uint32(len(keys)))
	for _, k := range keys {
		putStr(k)
		putStr(m.Params[k])
	}
	put32(uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	put32(crc32.Checksum(buf, castagnoli))
	return buf
}

// Decode parses the wire format produced by Encode, first verifying the
// trailing CRC32-C so corruption is detected before any field is trusted.
func Decode(data []byte) (Message, error) {
	var m Message
	if len(data) < 8 {
		return m, errors.New("comm: truncated message")
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return m, ErrChecksum
	}
	data = body
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, errors.New("comm: truncated message")
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, errors.New("comm: truncated message")
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if n > maxFrame || off+int(n) > len(data) {
			return "", errors.New("comm: truncated or oversized string")
		}
		v := string(data[off : off+int(n)])
		off += int(n)
		return v, nil
	}
	magic, err := get32()
	if err != nil {
		return m, err
	}
	if magic != frameMagic {
		return m, fmt.Errorf("comm: bad magic %#x", magic)
	}
	if m.Kind, err = getStr(); err != nil {
		return m, err
	}
	if m.Command, err = getStr(); err != nil {
		return m, err
	}
	if m.ReqID, err = get64(); err != nil {
		return m, err
	}
	seq, err := get32()
	if err != nil {
		return m, err
	}
	m.Seq = int(int32(seq))
	if off >= len(data) {
		return m, errors.New("comm: truncated message")
	}
	m.Final = data[off] == 1
	off++
	np, err := get32()
	if err != nil {
		return m, err
	}
	if np > 1<<16 {
		return m, fmt.Errorf("comm: implausible param count %d", np)
	}
	if np > 0 {
		m.Params = make(map[string]string, np)
		for i := uint32(0); i < np; i++ {
			k, err := getStr()
			if err != nil {
				return m, err
			}
			v, err := getStr()
			if err != nil {
				return m, err
			}
			m.Params[k] = v
		}
	}
	plen, err := get32()
	if err != nil {
		return m, err
	}
	if plen > maxFrame || off+int(plen) != len(data) {
		return m, errors.New("comm: payload length mismatch")
	}
	if plen > 0 {
		m.Payload = append([]byte(nil), data[off:off+int(plen)]...)
	}
	return m, nil
}

// WriteFrame writes one length-prefixed message to w (the TCP transport).
func WriteFrame(w io.Writer, m Message) error {
	data := Encode(m)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("comm: frame length %d exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Message{}, err
	}
	return Decode(data)
}

// FloatParam parses a float parameter with a default.
func (m *Message) FloatParam(key string, def float64) float64 {
	v, ok := m.Params[key]
	if !ok {
		return def
	}
	var f float64
	if _, err := fmt.Sscanf(v, "%g", &f); err != nil || math.IsNaN(f) {
		return def
	}
	return f
}

// IntParam parses an integer parameter with a default.
func (m *Message) IntParam(key string, def int) int {
	v, ok := m.Params[key]
	if !ok {
		return def
	}
	var i int
	if _, err := fmt.Sscanf(v, "%d", &i); err != nil {
		return def
	}
	return i
}

// EncodeIntList renders an integer list as a compact comma-separated param
// value — the wire form of block spans and completion watermarks. The empty
// list encodes as "" and round-trips through ParseIntList.
func EncodeIntList(items []int) string {
	var b strings.Builder
	for i, v := range items {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ParseIntList parses a comma-separated integer list produced by
// EncodeIntList, skipping malformed elements so a damaged param degrades to
// a shorter list instead of an error.
func ParseIntList(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	items := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			continue
		}
		items = append(items, v)
	}
	return items
}

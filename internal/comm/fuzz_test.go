package comm

import (
	"reflect"
	"testing"
)

// FuzzDecode exercises the message decoder: no panics, and accepted inputs
// round-trip.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(sampleMessage()))
	f.Add(Encode(Message{}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if !reflect.DeepEqual(m, mustDecode(t, Encode(m))) {
			t.Fatal("accepted message does not round-trip")
		}
	})
}

func mustDecode(t *testing.T, data []byte) Message {
	t.Helper()
	m, err := Decode(data)
	if err != nil {
		t.Fatalf("re-decode failed: %v", err)
	}
	return m
}

package comm

import (
	"encoding/binary"
	"fmt"
)

// FrameKind is the Kind of a coalesced comm frame: one fabric message whose
// payload carries several complete encoded messages back to back. Streaming
// producers batch small partial-result packets into frames so the per-message
// fabric charge (latency, inbound-link serialization) is paid once per frame
// instead of once per packet; consumers unpack the frame and process each
// sub-message exactly as if it had arrived on its own.
const FrameKind = "frame"

// EncodeBatch packs the messages into a frame payload: each sub-message's
// full wire encoding (magic, header, trailing CRC32-C) prefixed with its
// 32-bit little-endian length. Every sub-message's bytes are exactly its
// individual Encode output, so coalescing changes only how many fabric
// messages carry the stream, never the byte-level content a consumer decodes.
func EncodeBatch(msgs []Message) []byte {
	encs := make([][]byte, len(msgs))
	total := 0
	for i := range msgs {
		encs[i] = Encode(msgs[i])
		total += 4 + len(encs[i])
	}
	buf := make([]byte, 0, total)
	var s [4]byte
	for _, e := range encs {
		binary.LittleEndian.PutUint32(s[:], uint32(len(e)))
		buf = append(buf, s[:]...)
		buf = append(buf, e...)
	}
	return buf
}

// DecodeBatch unpacks a frame payload into its sub-messages. Each one is
// decoded — and CRC-checked — independently, so a frame either yields exactly
// the packets that were coalesced into it or an error; there is no partial
// acceptance of a corrupted frame.
func DecodeBatch(payload []byte) ([]Message, error) {
	var out []Message
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, fmt.Errorf("comm: truncated frame batch header")
		}
		n := binary.LittleEndian.Uint32(payload[:4])
		payload = payload[4:]
		if int64(n) > maxFrame || int(n) > len(payload) {
			return nil, fmt.Errorf("comm: frame batch entry of %d bytes exceeds remaining %d", n, len(payload))
		}
		m, err := Decode(payload[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		payload = payload[n:]
	}
	return out, nil
}

package comm

import (
	"math"
	"strconv"
	"strings"
)

// CanonicalFloat returns the canonical text form of a parameter value that
// parses fully as a finite float64: the shortest 'g'-format rendering that
// round-trips to the same value. Textually different but numerically equal
// spellings ("0.50", "0.5", "5e-1", "007") all map to one canonical string,
// which is what lets a content-addressed request key treat them as the same
// request. Values that do not parse as a finite float (command names, data
// set names, comma lists) are returned unchanged.
//
// The parse deliberately mirrors Message.FloatParam: leading/trailing ASCII
// space is tolerated, NaN and infinities are refused (they are never valid
// request parameters and must not collide with each other).
func CanonicalFloat(s string) string {
	t := strings.TrimSpace(s)
	if t == "" {
		return s
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return s
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

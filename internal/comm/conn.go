package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrWriteTimeout marks a Send that missed the connection's write deadline:
// the peer accepted the connection but stopped draining it (a wedged
// renderer, a half-open link). errors.Is-match it to distinguish "peer
// wedged" from "peer gone".
var ErrWriteTimeout = errors.New("comm: write timeout: peer not draining")

// Conn adapts a net.Conn (the TCP link between visualization client and
// scheduler) into a Sender/Receiver of framed messages. Writes are
// serialized; reads are expected from a single goroutine.
type Conn struct {
	c   net.Conn
	wmu sync.Mutex
	wto time.Duration
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// SetWriteTimeout bounds every subsequent Send: a frame that cannot be fully
// written within d fails with ErrWriteTimeout instead of blocking the sender
// forever behind a peer that stopped reading. d <= 0 restores unbounded
// writes.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.wto = d
	c.wmu.Unlock()
}

// Send writes one framed message, honoring the write timeout when one is
// set. After a timeout the connection is poisoned (a frame may be partially
// written) and must be discarded, like after any other send error.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wto > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.wto))
		defer c.c.SetWriteDeadline(time.Time{})
	}
	err := WriteFrame(c.c, m)
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (after %v)", ErrWriteTimeout, c.wto)
	}
	return err
}

// Recv reads one framed message; ok is false on any read error (EOF,
// closed connection, corrupt frame), after which the connection is dead.
func (c *Conn) Recv() (Message, bool) {
	m, err := ReadFrame(c.c)
	if err != nil {
		return Message{}, false
	}
	return m, true
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

var (
	_ Sender   = (*Conn)(nil)
	_ Receiver = (*Conn)(nil)
)

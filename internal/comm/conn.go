package comm

import (
	"net"
	"sync"
)

// Conn adapts a net.Conn (the TCP link between visualization client and
// scheduler) into a Sender/Receiver of framed messages. Writes are
// serialized; reads are expected from a single goroutine.
type Conn struct {
	c   net.Conn
	wmu sync.Mutex
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send writes one framed message.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.c, m)
}

// Recv reads one framed message; ok is false on any read error (EOF,
// closed connection, corrupt frame), after which the connection is dead.
func (c *Conn) Recv() (Message, bool) {
	m, err := ReadFrame(c.c)
	if err != nil {
		return Message{}, false
	}
	return m, true
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

var (
	_ Sender   = (*Conn)(nil)
	_ Receiver = (*Conn)(nil)
)

package comm

import (
	"errors"
	"testing"
)

// TestFrameChecksumDetectsBitFlips: a single-byte mutation anywhere in an
// encoded frame — header, body or the CRC trailer itself — must surface as
// ErrChecksum rather than decode into a wrong message.
func TestFrameChecksumDetectsBitFlips(t *testing.T) {
	good := Encode(sampleMessage())
	for off := 0; off < len(good); off++ {
		bad := append([]byte{}, good...)
		bad[off] ^= 0x01
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: err = %v, want ErrChecksum", off, err)
		}
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

// TestChecksumCoversPayload pins the trailer to CRC-32C over the whole
// frame: truncating the payload by one byte (shifting the trailer) fails the
// check instead of the length parse guessing wrong.
func TestChecksumTruncationDetected(t *testing.T) {
	good := Encode(sampleMessage())
	if _, err := Decode(good[:len(good)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

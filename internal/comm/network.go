package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"viracocha/internal/vclock"
)

// SendFault is the fault injector's verdict for one message in transit:
// drop it after charging the link, deliver it twice, and/or delay it beyond
// the modelled link cost. The zero value is a clean delivery.
type SendFault struct {
	Drop       bool
	Duplicate  bool
	ExtraDelay time.Duration
}

// FaultInjector decides the fate of each message as it enters a link. It is
// consulted once per Send; implementations must be safe for concurrent use
// and deterministic for reproducible experiments (see internal/faults).
type FaultInjector interface {
	OnSend(from, to string, m Message) SendFault
}

// ErrDown is returned by Send when the destination endpoint exists but its
// inbox has been closed — the node crashed or shut down. The message is
// lost; senders that care (heartbeat loops) can distinguish it from the
// unknown-endpoint error.
var ErrDown = errors.New("comm: endpoint down")

// Network is the in-process message-passing fabric between scheduler and
// workers (the paper's MPI layer). Every send charges the sender the link
// latency plus transfer time for the message's wire size, so gather and
// streaming overheads appear in the experiment timings.
type Network struct {
	Clock     vclock.Clock
	Latency   time.Duration
	Bandwidth float64 // bytes/s; <=0 means infinite
	// Faults, when non-nil, is consulted on every Send (fault injection;
	// nil means a perfectly reliable fabric).
	Faults FaultInjector

	mu    sync.Mutex
	nodes map[string]*Endpoint
	stats NetworkStats
}

// NetworkStats accumulates fabric-wide traffic counters.
type NetworkStats struct {
	Messages int64
	Bytes    int64
	// Dropped counts messages lost to injected link faults or dead
	// destination nodes; Duplicated counts injected duplicate deliveries.
	Dropped    int64
	Duplicated int64
}

// NewNetwork builds a fabric on the given clock with a uniform link model.
func NewNetwork(c vclock.Clock, latency time.Duration, bandwidth float64) *Network {
	return &Network{Clock: c, Latency: latency, Bandwidth: bandwidth, nodes: map[string]*Endpoint{}}
}

// Endpoint returns (creating on first use) the endpoint of the named node.
func (n *Network) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.nodes[name]; ok {
		return e
	}
	e := &Endpoint{
		name:   name,
		net:    n,
		inbox:  vclock.NewQueue[Message](n.Clock),
		inLink: vclock.NewSemaphore(n.Clock, 1),
	}
	n.nodes[name] = e
	return e
}

// Replace installs a fresh endpoint for the named node, superseding any
// existing one — the restarted node's new NIC. Senders resolve destinations
// by name on every Send, so they transparently reach the replacement; actors
// still holding the old endpoint keep reading its (closed, drained) inbox
// and sending through it, which charges them normally but delivers to the
// new incarnation — exactly what a rebooted host looks like from outside.
func (n *Network) Replace(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := &Endpoint{
		name:   name,
		net:    n,
		inbox:  vclock.NewQueue[Message](n.Clock),
		inLink: vclock.NewSemaphore(n.Clock, 1),
	}
	n.nodes[name] = e
	return e
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() NetworkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Network) transferCost(size int64) time.Duration {
	d := n.Latency
	if n.Bandwidth > 0 {
		d += time.Duration(float64(size) / n.Bandwidth * float64(time.Second))
	}
	return d
}

// Endpoint is one node's mailbox on the fabric. Each endpoint has a single
// inbound link: concurrent senders to the same node serialize their
// transfers, which is what makes "many work nodes literally firing data at
// the visualization system" (§5.2) a real cost as work groups grow.
type Endpoint struct {
	name   string
	net    *Network
	inbox  *vclock.Queue[Message]
	inLink *vclock.Semaphore
}

// Name reports the node name.
func (e *Endpoint) Name() string { return e.name }

// Send delivers m to the named endpoint, charging the sending actor the
// link cost. Sending to an unknown endpoint is an error (endpoints are
// created eagerly at startup); sending to a closed endpoint charges the
// link, silently discards the message and returns ErrDown — the fabric
// cannot tell a crashed node from a slow one any faster than that.
func (e *Endpoint) Send(to string, m Message) error {
	e.net.mu.Lock()
	dst, ok := e.net.nodes[to]
	faults := e.net.Faults
	if ok {
		e.net.stats.Messages++
		e.net.stats.Bytes += m.WireSize()
	}
	e.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("comm: unknown endpoint %q", to)
	}
	var f SendFault
	if faults != nil {
		f = faults.OnSend(e.name, to, m)
	}
	dst.inLink.Acquire()
	e.net.Clock.Sleep(e.net.transferCost(m.WireSize()) + f.ExtraDelay)
	dst.inLink.Release()
	if f.Drop {
		e.net.countDrop()
		return nil // lost in transit: the sender cannot know
	}
	if !dst.inbox.PushOpen(m) {
		e.net.countDrop()
		return ErrDown
	}
	if f.Duplicate {
		if dst.inbox.PushOpen(m) {
			e.net.mu.Lock()
			e.net.stats.Duplicated++
			e.net.mu.Unlock()
		}
	}
	return nil
}

func (n *Network) countDrop() {
	n.mu.Lock()
	n.stats.Dropped++
	n.mu.Unlock()
}

// Recv blocks the calling actor until a message arrives; ok is false after
// Close once the inbox is drained.
func (e *Endpoint) Recv() (Message, bool) {
	return e.inbox.Pop()
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	return e.inbox.TryPop()
}

// Pending reports the number of queued messages.
func (e *Endpoint) Pending() int { return e.inbox.Len() }

// Close shuts the inbox; pending messages can still be drained.
func (e *Endpoint) Close() { e.inbox.Close() }

// BoundSender adapts an endpoint into a Sender with a fixed destination.
type BoundSender struct {
	From *Endpoint
	To   string
}

// Send implements Sender.
func (b *BoundSender) Send(m Message) error { return b.From.Send(b.To, m) }

var (
	_ Sender   = (*BoundSender)(nil)
	_ Receiver = (*Endpoint)(nil)
)

// Fault-plan-driven codec fuzzing. This file is an external test package on
// purpose: faults imports comm, so importing faults from package comm's own
// tests would be an import cycle.
package comm_test

import (
	"reflect"
	"testing"

	"viracocha/internal/comm"
	"viracocha/internal/faults"
)

func corruptibleFrame() []byte {
	return comm.Encode(comm.Message{
		Kind:    "wdone",
		Command: "iso.dataman",
		ReqID:   77,
		Seq:     3,
		Final:   true,
		Params:  map[string]string{"worker": "w2", "rank": "1", "attempt": "0"},
		Payload: []byte("payload bytes that a link fault may corrupt"),
	})
}

// TestDecodeSurvivesMutatedFrames replays a spread of seeded fault-plan
// mutations over a valid frame: the decoder must never panic, and anything
// it accepts must round-trip.
func TestDecodeSurvivesMutatedFrames(t *testing.T) {
	base := corruptibleFrame()
	for seed := uint64(0); seed < 512; seed++ {
		data := append([]byte(nil), base...)
		faults.Mutate(seed, data, int(seed%9)+1)
		m, err := comm.Decode(data)
		if err != nil {
			continue
		}
		back, err := comm.Decode(comm.Encode(m))
		if err != nil {
			t.Fatalf("seed %d: accepted frame failed to re-decode: %v", seed, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("seed %d: accepted corrupted frame does not round-trip", seed)
		}
	}
}

func corruptibleBatch() []byte {
	return comm.EncodeBatch([]comm.Message{
		{
			Kind: "partial", Command: "vortex.streamed", ReqID: 12, Seq: 1,
			Params:  map[string]string{"worker": "w1", "rank": "1", "attempt": "0"},
			Payload: []byte("packet one of a coalesced frame"),
		},
		{
			Kind: "partial", Command: "vortex.streamed", ReqID: 12, Seq: 2,
			Params:  map[string]string{"worker": "w1", "rank": "1", "attempt": "0", "block": "5", "bseq": "1"},
			Payload: []byte("packet two, block-tagged"),
		},
	})
}

// TestDecodeBatchSurvivesMutatedFrames replays seeded fault-plan mutations
// over a valid coalesced frame: DecodeBatch must never panic, and any batch
// it accepts must consist of messages that individually round-trip — a link
// fault can cost the whole frame but can never smuggle a corrupt packet
// through the per-message CRC.
func TestDecodeBatchSurvivesMutatedFrames(t *testing.T) {
	base := corruptibleBatch()
	for seed := uint64(0); seed < 512; seed++ {
		data := append([]byte(nil), base...)
		faults.Mutate(seed, data, int(seed%9)+1)
		msgs, err := comm.DecodeBatch(data)
		if err != nil {
			continue
		}
		for i, m := range msgs {
			back, err := comm.Decode(comm.Encode(m))
			if err != nil {
				t.Fatalf("seed %d: accepted sub-message %d failed to re-decode: %v", seed, i, err)
			}
			if !reflect.DeepEqual(m, back) {
				t.Fatalf("seed %d: accepted sub-message %d does not round-trip", seed, i)
			}
		}
	}
}

// FuzzDecodeBatchMutated lets the fuzzer drive mutations over a coalesced
// frame directly.
func FuzzDecodeBatchMutated(f *testing.F) {
	f.Add(uint64(1), 1)
	f.Add(uint64(42), 4)
	f.Add(uint64(1<<40), 16)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 {
			n = -n
		}
		n %= 64
		data := corruptibleBatch()
		faults.Mutate(seed, data, n)
		msgs, err := comm.DecodeBatch(data)
		if err != nil {
			return
		}
		for _, m := range msgs {
			if back, err := comm.Decode(comm.Encode(m)); err != nil || !reflect.DeepEqual(m, back) {
				t.Fatalf("accepted mutated sub-message does not round-trip (err %v)", err)
			}
		}
	})
}

// FuzzDecodeMutated lets the fuzzer drive the mutation parameters directly.
func FuzzDecodeMutated(f *testing.F) {
	f.Add(uint64(1), 1)
	f.Add(uint64(42), 4)
	f.Add(uint64(1<<40), 16)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 {
			n = -n
		}
		n %= 64
		data := corruptibleFrame()
		faults.Mutate(seed, data, n)
		m, err := comm.Decode(data)
		if err != nil {
			return
		}
		if back, err := comm.Decode(comm.Encode(m)); err != nil || !reflect.DeepEqual(m, back) {
			t.Fatalf("accepted mutated frame does not round-trip (err %v)", err)
		}
	})
}

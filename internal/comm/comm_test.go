package comm

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"viracocha/internal/vclock"
)

func sampleMessage() Message {
	return Message{
		Kind:    "partial",
		Command: "iso.viewer",
		ReqID:   42,
		Seq:     7,
		Final:   true,
		Params:  map[string]string{"iso": "0.5", "field": "pressure"},
		Payload: []byte{1, 2, 3, 4, 5},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeEmptyMessage(t *testing.T) {
	got, err := Decode(Encode(Message{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Message{}) {
		t.Fatalf("empty round trip = %+v", got)
	}
}

func TestNegativeSeqSurvives(t *testing.T) {
	m := Message{Kind: "x", Seq: -3}
	got, err := Decode(Encode(m))
	if err != nil || got.Seq != -3 {
		t.Fatalf("Seq = %d, err %v", got.Seq, err)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	good := Encode(sampleMessage())
	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated": good[:len(good)-2],
		"trailing":  append(append([]byte{}, good...), 0xFF),
	}
	for name, d := range cases {
		if _, err := Decode(d); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Message{
			Kind:    randStr(rng, 8),
			Command: randStr(rng, 12),
			ReqID:   rng.Uint64(),
			Seq:     rng.Intn(1000) - 500,
			Final:   rng.Intn(2) == 0,
		}
		if n := rng.Intn(4); n > 0 {
			m.Params = map[string]string{}
			for i := 0; i < n; i++ {
				m.Params[randStr(rng, 5)] = randStr(rng, 9)
			}
		}
		if rng.Intn(2) == 0 {
			m.Payload = make([]byte, rng.Intn(256))
			rng.Read(m.Payload)
			if len(m.Payload) == 0 {
				m.Payload = nil
			}
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randStr(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnop.=?"
	b := make([]byte, rng.Intn(n)+1)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

func TestWireSizeMatchesEncode(t *testing.T) {
	m := sampleMessage()
	if int64(len(Encode(m))) != m.WireSize() {
		t.Fatalf("WireSize %d != encoded %d", m.WireSize(), len(Encode(m)))
	}
}

func TestParamHelpers(t *testing.T) {
	m := Message{Params: map[string]string{"iso": "0.25", "workers": "8", "junk": "x"}}
	if got := m.FloatParam("iso", -1); got != 0.25 {
		t.Fatalf("FloatParam = %v", got)
	}
	if got := m.FloatParam("missing", -1); got != -1 {
		t.Fatalf("FloatParam default = %v", got)
	}
	if got := m.FloatParam("junk", -1); got != -1 {
		t.Fatalf("FloatParam junk = %v", got)
	}
	if got := m.IntParam("workers", 0); got != 8 {
		t.Fatalf("IntParam = %v", got)
	}
	if got := m.IntParam("junk", 3); got != 3 {
		t.Fatalf("IntParam junk = %v", got)
	}
}

func TestIntListRoundTrip(t *testing.T) {
	for _, items := range [][]int{nil, {}, {0}, {5}, {3, 1, 4, 1, 5, 9}, {-2, 0, 7}} {
		enc := EncodeIntList(items)
		got := ParseIntList(enc)
		if len(got) != len(items) {
			t.Fatalf("round trip of %v via %q = %v", items, enc, got)
		}
		for i := range items {
			if got[i] != items[i] {
				t.Fatalf("round trip of %v via %q = %v", items, enc, got)
			}
		}
	}
	if got := EncodeIntList(nil); got != "" {
		t.Fatalf("EncodeIntList(nil) = %q, want empty", got)
	}
	if got := ParseIntList(""); got != nil {
		t.Fatalf("ParseIntList(\"\") = %v, want nil", got)
	}
	// Malformed elements are skipped, not fatal: a damaged watermark loses
	// items, it does not poison the journal.
	if got := ParseIntList("1,x,3"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ParseIntList with junk = %v", got)
	}
}

func TestFrameRoundTripOverBuffer(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{sampleMessage(), {Kind: "ack"}, {Kind: "result", Final: true}}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame mismatch: %+v vs %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected EOF on drained buffer")
	}
}

func TestNetworkDelivery(t *testing.T) {
	v := vclock.NewVirtual()
	net := NewNetwork(v, 0, 0)
	sched := net.Endpoint("scheduler")
	w0 := net.Endpoint("w0")
	var got Message
	v.Go(func() {
		m, ok := w0.Recv()
		if !ok {
			t.Error("recv failed")
			return
		}
		got = m
	})
	v.Go(func() {
		if err := sched.Send("w0", Message{Kind: "command", Command: "iso"}); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	if got.Kind != "command" || got.Command != "iso" {
		t.Fatalf("got %+v", got)
	}
	if s := net.Stats(); s.Messages != 1 || s.Bytes <= 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNetworkChargesTransferCost(t *testing.T) {
	v := vclock.NewVirtual()
	// 1 KB/ms bandwidth (1e6 B/s), 5ms latency.
	fabric := NewNetwork(v, 5*time.Millisecond, 1e6)
	a := fabric.Endpoint("a")
	b := fabric.Endpoint("b")
	payload := make([]byte, 100000)
	m := Message{Kind: "partial", Payload: payload}
	wire := m.WireSize()
	v.Go(func() {
		a.Send("b", m)
	})
	v.Go(func() {
		b.Recv()
	})
	v.Wait()
	want := 5*time.Millisecond + time.Duration(float64(wire)/1e6*float64(time.Second))
	if v.Now() != want {
		t.Fatalf("send charged %v, want %v", v.Now(), want)
	}
}

func TestNetworkUnknownEndpoint(t *testing.T) {
	v := vclock.NewVirtual()
	fabric := NewNetwork(v, 0, 0)
	a := fabric.Endpoint("a")
	v.Go(func() {
		if err := a.Send("ghost", Message{}); err == nil {
			t.Error("expected error for unknown endpoint")
		}
	})
	v.Wait()
}

func TestEndpointCloseDrains(t *testing.T) {
	v := vclock.NewVirtual()
	fabric := NewNetwork(v, 0, 0)
	a := fabric.Endpoint("a")
	b := fabric.Endpoint("b")
	v.Go(func() {
		a.Send("b", Message{Kind: "one"})
		a.Send("b", Message{Kind: "two"})
		b.Close()
	})
	var kinds []string
	v.Go(func() {
		// Give the sender a head start so both messages are queued.
		v.Sleep(time.Millisecond)
		for {
			m, ok := b.Recv()
			if !ok {
				return
			}
			kinds = append(kinds, m.Kind)
		}
	})
	v.Wait()
	if len(kinds) != 2 {
		t.Fatalf("drained %v", kinds)
	}
}

func TestBoundSender(t *testing.T) {
	v := vclock.NewVirtual()
	fabric := NewNetwork(v, 0, 0)
	a := fabric.Endpoint("a")
	b := fabric.Endpoint("b")
	s := &BoundSender{From: a, To: "b"}
	v.Go(func() {
		if err := s.Send(Message{Kind: "hi"}); err != nil {
			t.Error(err)
		}
	})
	v.Go(func() {
		if m, ok := b.Recv(); !ok || m.Kind != "hi" {
			t.Errorf("recv = %+v, %v", m, ok)
		}
	})
	v.Wait()
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Message, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		m, ok := conn.Recv()
		if !ok {
			return
		}
		conn.Send(Message{Kind: "ack", ReqID: m.ReqID})
		done <- m
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(c)
	defer conn.Close()
	want := sampleMessage()
	if err := conn.Send(want); err != nil {
		t.Fatal(err)
	}
	ack, ok := conn.Recv()
	if !ok || ack.Kind != "ack" || ack.ReqID != want.ReqID {
		t.Fatalf("ack = %+v, %v", ack, ok)
	}
	got := <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("server got %+v", got)
	}
}

func TestConnRecvFailsAfterClose(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(a)
	b.Close()
	a.Close()
	if _, ok := conn.Recv(); ok {
		t.Fatal("recv on closed conn succeeded")
	}
}

func TestInboundLinkSerializesConcurrentSenders(t *testing.T) {
	// Four senders each ship a 1-second transfer to the same receiver: the
	// receiver's single inbound link must serialize them to a 4s makespan.
	v := vclock.NewVirtual()
	fabric := NewNetwork(v, 0, 1e6) // 1 MB/s
	sink := fabric.Endpoint("sink")
	payload := make([]byte, 1e6)
	for i := 0; i < 4; i++ {
		src := fabric.Endpoint(string(rune('a' + i)))
		v.Go(func() {
			src.Send("sink", Message{Kind: "partial", Payload: payload})
		})
	}
	var got int
	v.Go(func() {
		for got < 4 {
			if _, ok := sink.Recv(); ok {
				got++
			}
		}
	})
	v.Wait()
	// Each message is slightly over 1 MB on the wire → slightly over 4s.
	if v.Now() < 4*time.Second || v.Now() > 4200*time.Millisecond {
		t.Fatalf("makespan = %v, want ≈ 4s (serialized inbound link)", v.Now())
	}
}

func TestInboundLinksOfDistinctReceiversOverlap(t *testing.T) {
	v := vclock.NewVirtual()
	fabric := NewNetwork(v, 0, 1e6)
	payload := make([]byte, 1e6)
	for i := 0; i < 4; i++ {
		name := string(rune('r' + i))
		dst := fabric.Endpoint("dst-" + name)
		src := fabric.Endpoint("src-" + name)
		v.Go(func() {
			src.Send(dst.Name(), Message{Kind: "partial", Payload: payload})
		})
		v.Go(func() { dst.Recv() })
	}
	v.Wait()
	if v.Now() > 1100*time.Millisecond {
		t.Fatalf("independent links did not overlap: %v", v.Now())
	}
}

func TestWriteTimeoutOnWedgedPeer(t *testing.T) {
	// A peer that accepts the connection and then never reads: once the
	// kernel buffers fill, Send must fail with ErrWriteTimeout instead of
	// blocking the stream goroutine forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c // held open, never read
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Shrink the send buffer so a handful of large frames wedges the write.
	if tc, ok := raw.(*net.TCPConn); ok {
		tc.SetWriteBuffer(4 << 10)
	}
	conn := NewConn(raw)
	conn.SetWriteTimeout(200 * time.Millisecond)
	big := Message{Kind: "partial", ReqID: 1, Payload: bytes.Repeat([]byte{0xAB}, 256<<10)}
	var sendErr error
	for i := 0; i < 64; i++ {
		if sendErr = conn.Send(big); sendErr != nil {
			break
		}
	}
	if !errors.Is(sendErr, ErrWriteTimeout) {
		t.Fatalf("send against wedged peer = %v, want ErrWriteTimeout", sendErr)
	}
	if c := <-accepted; c != nil {
		c.Close()
	}
}

func TestWriteTimeoutZeroIsUnbounded(t *testing.T) {
	// The default (no timeout) must keep working for well-behaved peers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Message, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		m, _ := ReadFrame(c)
		done <- m
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw)
	if err := conn.Send(Message{Kind: "command", ReqID: 9}); err != nil {
		t.Fatal(err)
	}
	if m := <-done; m.ReqID != 9 {
		t.Fatalf("peer read ReqID %d, want 9", m.ReqID)
	}
}

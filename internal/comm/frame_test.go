package comm

import (
	"bytes"
	"reflect"
	"testing"
)

func batchMessages() []Message {
	return []Message{
		{
			Kind: "partial", Command: "vortex.streamed", ReqID: 9, Seq: 1,
			Params:  map[string]string{"worker": "w0", "rank": "0", "attempt": "0"},
			Payload: []byte("first packet"),
		},
		{
			Kind: "partial", Command: "vortex.streamed", ReqID: 9, Seq: 2,
			Params:  map[string]string{"worker": "w0", "rank": "0", "attempt": "0", "block": "3", "bseq": "0"},
			Payload: []byte{},
		},
		{
			Kind: "partial", Command: "vortex.streamed", ReqID: 9, Seq: 3,
			Params:  map[string]string{"worker": "w0", "rank": "0", "attempt": "0"},
			Payload: bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 513),
		},
	}
}

// TestBatchRoundTrip: a coalesced frame must yield exactly the messages that
// went in, and each sub-message's bytes must equal its individual encoding —
// coalescing batches fabric messages, never alters payload content.
func TestBatchRoundTrip(t *testing.T) {
	msgs := batchMessages()
	payload := EncodeBatch(msgs)
	back, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(back), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(normalize(msgs[i]), normalize(back[i])) {
			t.Fatalf("message %d does not round-trip:\n in: %+v\nout: %+v", i, msgs[i], back[i])
		}
	}
	// Byte-level identity of the embedded encodings.
	off := 0
	for i := range msgs {
		enc := Encode(msgs[i])
		sub := payload[off+4 : off+4+len(enc)]
		if !bytes.Equal(enc, sub) {
			t.Fatalf("message %d: embedded bytes differ from individual Encode", i)
		}
		off += 4 + len(enc)
	}
}

// normalize maps an encode/decode-equivalent message to a canonical form:
// the codec does not distinguish nil from empty payloads or param maps.
func normalize(m Message) Message {
	if len(m.Payload) == 0 {
		m.Payload = nil
	}
	if len(m.Params) == 0 {
		m.Params = nil
	}
	return m
}

func TestBatchEmpty(t *testing.T) {
	if p := EncodeBatch(nil); len(p) != 0 {
		t.Fatalf("empty batch encoded to %d bytes", len(p))
	}
	msgs, err := DecodeBatch(nil)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("empty payload: %d messages, err %v", len(msgs), err)
	}
}

// TestBatchRejectsDamage: truncation anywhere, a lying length prefix, or a
// flipped payload byte must all fail loudly — never a partial decode.
func TestBatchRejectsDamage(t *testing.T) {
	payload := EncodeBatch(batchMessages())
	for cut := 1; cut < len(payload); cut += 37 {
		if _, err := DecodeBatch(payload[:cut]); err == nil {
			// A cut can only succeed if it lands exactly on an entry
			// boundary; verify it decoded a strict prefix in that case.
			msgs, _ := DecodeBatch(payload[:cut])
			if len(msgs) >= 3 {
				t.Fatalf("truncation at %d decoded the full batch", cut)
			}
		}
	}
	huge := append([]byte(nil), payload...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := DecodeBatch(huge); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	flipped := append([]byte(nil), payload...)
	flipped[len(flipped)/2] ^= 0x10
	if msgs, err := DecodeBatch(flipped); err == nil {
		// The flip must have hit a length prefix in a way that still framed
		// CRC-valid messages — effectively impossible; treat success with
		// all three originals as a checksum failure.
		if len(msgs) == 3 {
			t.Fatal("corrupted batch decoded without error")
		}
	}
}

package comm

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestCanonicalFloat(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		// Numerically equal spellings collapse to one canonical form.
		{"0.5", "0.5"},
		{"0.50", "0.5"},
		{".5", "0.5"},
		{"5e-1", "0.5"},
		{"0.5000000", "0.5"},
		{"007", "7"},
		{"7", "7"},
		{"7.0", "7"},
		{"1e3", "1000"},
		{"1000", "1000"},
		{"-1000", "-1000"},
		{"-1e3", "-1000"},
		{"0", "0"},
		{"-0", "-0"}, // IEEE negative zero is a distinct value; keep it distinct
		{"0.0", "0"},
		{"  0.5  ", "0.5"}, // FloatParam's scan skips space; so does the key
		{"1e-07", "1e-07"},
		{"0.0000001", "1e-07"},
		{"3.1415926535897932384626", "3.141592653589793"},
		// Non-floats pass through untouched.
		{"", ""},
		{"engine", "engine"},
		{"engine/t003", "engine/t003"},
		{"1,2,3", "1,2,3"},
		{"0x10", "0x10"},
		{"NaN", "NaN"},
		{"nan", "nan"},
		{"Inf", "Inf"},
		{"-Inf", "-Inf"},
		{"1e999", "1e999"}, // overflows float64: not canonicalized
	}
	for _, c := range cases {
		if got := CanonicalFloat(c.in); got != c.want {
			t.Errorf("CanonicalFloat(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCanonicalFloatIdempotent checks that canonical forms are fixed points.
func TestCanonicalFloatIdempotent(t *testing.T) {
	for _, in := range []string{"0.50", "007", "1e3", "-0", "engine", "3.14159", "1e-323"} {
		once := CanonicalFloat(in)
		if twice := CanonicalFloat(once); twice != once {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
}

// FuzzCanonicalFloat checks the two properties the memo key depends on:
// canonicalization is idempotent, and a float-parsable input's canonical form
// parses back to the identical float64 (so numerically equal spellings — and
// only those — collide).
func FuzzCanonicalFloat(f *testing.F) {
	for _, seed := range []string{"0.5", "0.50", "5e-1", "007", "-0", "1e309", "NaN", "engine", "", " 2 ", "1e-323"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		once := CanonicalFloat(s)
		if twice := CanonicalFloat(once); twice != once {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, once, twice)
		}
		fIn, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || math.IsNaN(fIn) || math.IsInf(fIn, 0) {
			if once != s {
				t.Fatalf("non-float %q was rewritten to %q", s, once)
			}
			return
		}
		fOut, err := strconv.ParseFloat(once, 64)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", once, s, err)
		}
		if fIn != fOut || math.Signbit(fIn) != math.Signbit(fOut) {
			t.Fatalf("canonical form %q of %q re-parses to %v, not %v", once, s, fOut, fIn)
		}
	})
}

package loader

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
	"viracocha/internal/storage"
	"viracocha/internal/vclock"
)

func tinyID(b int) grid.BlockID { return grid.BlockID{Dataset: "tiny", Step: 0, Block: b} }

func newDev(v vclock.Clock, name string, latency time.Duration, bw float64) *storage.Device {
	return storage.NewDevice(name, &storage.GenBackend{Desc: dataset.Tiny()}, v, latency, bw, 1)
}

func TestSelectorPrefersCheapestSource(t *testing.T) {
	v := vclock.NewVirtual()
	fast := &DeviceSource{Dev: newDev(v, "local-disk", time.Millisecond, 100e6)}
	slow := &DeviceSource{Dev: newDev(v, "file-server", 20*time.Millisecond, 10e6)}
	s := NewSelector(v, 0, slow, fast)
	v.Go(func() {
		src, err := s.Decide(tinyID(0))
		if err != nil {
			t.Error(err)
			return
		}
		if src.Name() != "local-disk" {
			t.Errorf("Decide = %s, want local-disk", src.Name())
		}
	})
	v.Wait()
}

func TestSelectorChargesDecideCost(t *testing.T) {
	v := vclock.NewVirtual()
	src := &DeviceSource{Dev: newDev(v, "disk", 0, 0)}
	s := NewSelector(v, 2*time.Millisecond, src)
	v.Go(func() {
		if _, err := s.Decide(tinyID(0)); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	if v.Now() != 2*time.Millisecond {
		t.Fatalf("decide charged %v, want 2ms", v.Now())
	}
}

func TestSelectorLoadFallsBackOnFailure(t *testing.T) {
	v := vclock.NewVirtual()
	// The "cheap" source always fails; the selector must fall back and
	// still return the block.
	failing := &storage.FailingBackend{
		Inner: &storage.GenBackend{Desc: dataset.Tiny()},
		Match: func(grid.BlockID) bool { return true },
		Err:   errors.New("nfs down"),
	}
	bad := &DeviceSource{Dev: storage.NewDevice("broken", failing, v, 0, 0, 1)}
	good := &DeviceSource{Dev: newDev(v, "disk", 10*time.Millisecond, 0)}
	s := NewSelector(v, 0, bad, good)
	v.Go(func() {
		b, _, err := s.Load(tinyID(1))
		if err != nil || b == nil {
			t.Errorf("Load = %v, %v", b, err)
		}
	})
	v.Wait()
	if r := s.Reliability("broken"); r >= 1 {
		t.Fatalf("failure not observed: reliability = %v", r)
	}
	if r := s.Reliability("disk"); r != 1 {
		t.Fatalf("success degraded reliability: %v", r)
	}
}

func TestSelectorAdaptsAwayFromFailingSource(t *testing.T) {
	v := vclock.NewVirtual()
	failing := &storage.FailingBackend{
		Inner: &storage.GenBackend{Desc: dataset.Tiny()},
		Match: func(grid.BlockID) bool { return true },
	}
	// The broken source looks cheaper (zero latency) so it is tried first —
	// until reliability observations push its fitness above the good one.
	bad := &DeviceSource{Dev: storage.NewDevice("broken", failing, v, 0, 0, 1)}
	good := &DeviceSource{Dev: newDev(v, "disk", 5*time.Millisecond, 0)}
	s := NewSelector(v, 0, bad, good)
	v.Go(func() {
		for i := 0; i < 10; i++ {
			if _, _, err := s.Load(tinyID(i % 4)); err != nil {
				t.Error(err)
				return
			}
		}
		// After repeated failures the selector must prefer "disk" outright.
		src, err := s.Decide(tinyID(0))
		if err != nil {
			t.Error(err)
			return
		}
		if src.Name() != "disk" {
			t.Errorf("selector still prefers %s after failures", src.Name())
		}
	})
	v.Wait()
}

func TestSelectorNoSources(t *testing.T) {
	v := vclock.NewVirtual()
	s := NewSelector(v, 0)
	v.Go(func() {
		if _, _, err := s.Load(tinyID(0)); err == nil {
			t.Error("expected error with no sources")
		}
	})
	v.Wait()
}

func TestSelectorAllFail(t *testing.T) {
	v := vclock.NewVirtual()
	failing := &storage.FailingBackend{
		Inner: &storage.GenBackend{Desc: dataset.Tiny()},
		Match: func(grid.BlockID) bool { return true },
		Err:   errors.New("boom"),
	}
	bad := &DeviceSource{Dev: storage.NewDevice("broken", failing, v, 0, 0, 1)}
	s := NewSelector(v, 0, bad)
	v.Go(func() {
		_, _, err := s.Load(tinyID(0))
		if err == nil || !strings.Contains(err.Error(), "all sources failed") {
			t.Errorf("err = %v", err)
		}
	})
	v.Wait()
}

func TestFuncSourceAvailability(t *testing.T) {
	v := vclock.NewVirtual()
	mem := storage.NewMemBackend()
	blk := dataset.Tiny().Generate(0, 2)
	mem.Put(blk)
	peer := &FuncSource{
		SourceName: "peer",
		AvailFn:    func(id grid.BlockID) bool { _, _, err := mem.Fetch(id); return err == nil },
		CostFn:     func(grid.BlockID) time.Duration { return time.Microsecond },
		LoadFn:     func(id grid.BlockID) (*grid.Block, int64, error) { return mem.Fetch(id) },
	}
	disk := &DeviceSource{Dev: newDev(v, "disk", 50*time.Millisecond, 0)}
	s := NewSelector(v, 0, disk, peer)
	v.Go(func() {
		// Cached block: peer wins.
		src, _ := s.Decide(blk.ID)
		if src.Name() != "peer" {
			t.Errorf("Decide cached = %s, want peer", src.Name())
		}
		// Uncached block: peer unavailable, disk wins.
		src, _ = s.Decide(tinyID(3))
		if src.Name() != "disk" {
			t.Errorf("Decide uncached = %s, want disk", src.Name())
		}
	})
	v.Wait()
}

func TestCollectiveAmortizesLatency(t *testing.T) {
	v := vclock.NewVirtual()
	// High-latency device: collective pays latency once.
	dev := storage.NewDevice("fs", &storage.GenBackend{Desc: dataset.Tiny()}, v, 100*time.Millisecond, 0, 1)
	col := &Collective{Dev: dev, Clock: v, CoordinationCost: time.Millisecond}
	ids := []grid.BlockID{tinyID(0), tinyID(1), tinyID(2), tinyID(3)}
	v.Go(func() {
		blocks, _, err := col.LoadRun(ids)
		if err != nil || len(blocks) != 4 {
			t.Errorf("LoadRun = %d blocks, %v", len(blocks), err)
		}
	})
	v.Wait()
	// 4 coordination ms + 1 latency (100ms) = 104ms, vs 400ms individually.
	want := 4*time.Millisecond + 100*time.Millisecond
	if v.Now() != want {
		t.Fatalf("collective cost %v, want %v", v.Now(), want)
	}
}

func TestCollectiveCanLoseToIndependentLoads(t *testing.T) {
	v := vclock.NewVirtual()
	// Low-latency device + expensive coordination: collective loses, the
	// paper's observed regime.
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, time.Millisecond, 0, 1)
	col := &Collective{Dev: dev, Clock: v, CoordinationCost: 10 * time.Millisecond}
	ids := []grid.BlockID{tinyID(0), tinyID(1), tinyID(2)}
	v.Go(func() {
		if _, _, err := col.LoadRun(ids); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	collective := v.Now() // 30ms coordination + 1ms latency

	v2 := vclock.NewVirtual()
	dev2 := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v2, time.Millisecond, 0, 1)
	v2.Go(func() {
		for _, id := range ids {
			dev2.Load(id)
		}
	})
	v2.Wait()
	if collective <= v2.Now() {
		t.Fatalf("collective %v should lose to independent %v here", collective, v2.Now())
	}
}

func TestCollectiveEmptyRun(t *testing.T) {
	v := vclock.NewVirtual()
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, 0, 0, 1)
	col := &Collective{Dev: dev, Clock: v}
	blocks, n, err := col.LoadRun(nil)
	if blocks != nil || n != 0 || err != nil {
		t.Fatalf("empty run = %v,%d,%v", blocks, n, err)
	}
}

func TestChosenCountTracksDecisions(t *testing.T) {
	v := vclock.NewVirtual()
	src := &DeviceSource{Dev: newDev(v, "disk", 0, 0)}
	s := NewSelector(v, 0, src)
	v.Go(func() {
		for i := 0; i < 5; i++ {
			s.Load(tinyID(i % 4))
		}
	})
	v.Wait()
	if got := s.ChosenCount("disk"); got != 5 {
		t.Fatalf("ChosenCount = %d, want 5", got)
	}
	if got := s.ChosenCount("nope"); got != 0 {
		t.Fatalf("ChosenCount unknown = %d", got)
	}
}

func TestLoadBackgroundShedsWhenSaturated(t *testing.T) {
	// The saturation policy allows one queued background request per device
	// (a prefetch pipeline needs that much); anything beyond is shed.
	v := vclock.NewVirtual()
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, 0, 1e3, 1)
	src := &DeviceSource{Dev: dev}
	s := NewSelector(v, 0, src)
	var queued, shed atomic.Bool
	v.Go(func() {
		// Occupy the only channel with a long demand load.
		s.Load(tinyID(0))
	})
	v.Go(func() {
		v.Sleep(time.Millisecond) // let the demand load start
		// First background load: allowed to queue behind the transfer.
		_, _, err := s.LoadBackground(tinyID(1))
		if err == nil {
			queued.Store(true)
		}
	})
	v.Go(func() {
		v.Sleep(2 * time.Millisecond) // after the first background queued
		_, _, err := s.LoadBackground(tinyID(2))
		if errors.Is(err, ErrBusy) {
			shed.Store(true)
		}
	})
	v.Wait()
	if !queued.Load() {
		t.Fatal("first background load should have been allowed to queue")
	}
	if !shed.Load() {
		t.Fatal("second background load not shed while the device was saturated")
	}
	// Shedding must not damage the source's reliability estimate.
	if r := s.Reliability("disk"); r != 1 {
		t.Fatalf("reliability = %v after shed", r)
	}
}

func TestLoadBackgroundSucceedsWhenIdle(t *testing.T) {
	v := vclock.NewVirtual()
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, 0, 0, 2)
	s := NewSelector(v, 0, &DeviceSource{Dev: dev})
	v.Go(func() {
		b, _, err := s.LoadBackground(tinyID(0))
		if err != nil || b == nil {
			t.Errorf("idle background load failed: %v", err)
		}
	})
	v.Wait()
}

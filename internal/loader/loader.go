// Package loader implements the DMS loading strategies of the paper (§4.3):
// direct disk access, remote file-server access, peer transfer out of other
// proxies' caches, and collective I/O — plus the adaptive, fitness-driven
// selector that picks a strategy per load based on predicted cost and
// observed reliability, so the system reacts to network delays and file
// server failures.
package loader

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"viracocha/internal/grid"
	"viracocha/internal/storage"
	"viracocha/internal/vclock"
)

// Source is one way of obtaining a block: a disk, a file server, a peer
// cache. EstimateCost predicts the uncontended load time for the block;
// Available reports whether this source can currently supply it at all.
type Source interface {
	Name() string
	Available(id grid.BlockID) bool
	EstimateCost(id grid.BlockID) time.Duration
	Load(id grid.BlockID) (*grid.Block, int64, error)
}

// DeviceSource adapts a storage.Device into a Source. BytesFor predicts the
// charged transfer size for cost estimation; when nil a fixed typical size
// is assumed.
type DeviceSource struct {
	Dev      *storage.Device
	BytesFor func(grid.BlockID) int64
}

// Name implements Source.
func (d *DeviceSource) Name() string { return d.Dev.Name }

// Available implements Source; devices can always be asked.
func (d *DeviceSource) Available(grid.BlockID) bool { return true }

// EstimateCost implements Source.
func (d *DeviceSource) EstimateCost(id grid.BlockID) time.Duration {
	var bytes int64 = 1 << 20
	if d.BytesFor != nil {
		bytes = d.BytesFor(id)
	}
	return d.Dev.EstimateCost(bytes)
}

// Load implements Source.
func (d *DeviceSource) Load(id grid.BlockID) (*grid.Block, int64, error) {
	return d.Dev.Load(id)
}

// LoadBackground implements BackgroundSource: when demand requests are
// queued on the device, the background load is refused with ErrBusy so
// prefetching cannot steal a saturated channel.
func (d *DeviceSource) LoadBackground(id grid.BlockID) (*grid.Block, int64, error) {
	if d.Dev.Saturated() {
		return nil, 0, ErrBusy
	}
	return d.Dev.LoadBackground(id)
}

// FuncSource builds a Source from closures; the DMS uses it to expose peer
// caches without an import cycle.
type FuncSource struct {
	SourceName string
	AvailFn    func(grid.BlockID) bool
	CostFn     func(grid.BlockID) time.Duration
	LoadFn     func(grid.BlockID) (*grid.Block, int64, error)
}

// Name implements Source.
func (f *FuncSource) Name() string { return f.SourceName }

// Available implements Source.
func (f *FuncSource) Available(id grid.BlockID) bool { return f.AvailFn(id) }

// EstimateCost implements Source.
func (f *FuncSource) EstimateCost(id grid.BlockID) time.Duration { return f.CostFn(id) }

// Load implements Source.
func (f *FuncSource) Load(id grid.BlockID) (*grid.Block, int64, error) { return f.LoadFn(id) }

// Selector is the centralized strategy decider that lives at the scheduler
// node. Every proxy load first asks the selector which source to use; that
// round trip is charged as DecideCost, reproducing the paper's caveat that
// adaptive selection adds communication to every load.
type Selector struct {
	Clock vclock.Clock
	// DecideCost is the communication cost of consulting the central
	// decision component, charged to the caller on every Decide.
	DecideCost time.Duration
	// FailurePenalty is the expected cost of a wasted attempt on an
	// unreliable source; fitness adds FailurePenalty·(1−reliability), so a
	// cheap-but-failing source loses to a dearer reliable one.
	FailurePenalty time.Duration

	mu      sync.Mutex
	sources []Source
	obs     map[string]*observation
}

type observation struct {
	reliability float64 // EWMA of success(1)/failure(0)
	loads       int64
	failures    int64
	chosen      int64
}

// NewSelector builds a selector over the given sources, most-preferred-first
// order being irrelevant: fitness decides.
func NewSelector(c vclock.Clock, decideCost time.Duration, sources ...Source) *Selector {
	s := &Selector{
		Clock:          c,
		DecideCost:     decideCost,
		FailurePenalty: 100 * time.Millisecond,
		obs:            map[string]*observation{},
	}
	for _, src := range sources {
		s.AddSource(src)
	}
	return s
}

// AddSource registers an additional source (e.g. a peer that joined).
func (s *Selector) AddSource(src Source) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.obs[src.Name()] = &observation{reliability: 1}
	s.mu.Unlock()
}

// rank returns sources able to supply id, ordered by ascending fitness:
// predicted cost plus the expected cost of failed attempts,
// FailurePenalty·(1−reliability).
func (s *Selector) rank(id grid.BlockID) []Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	type scored struct {
		src Source
		fit float64
	}
	var cands []scored
	for _, src := range s.sources {
		if !src.Available(id) {
			continue
		}
		rel := s.obs[src.Name()].reliability
		fit := src.EstimateCost(id).Seconds() + s.FailurePenalty.Seconds()*(1-rel)
		cands = append(cands, scored{src, fit})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].fit < cands[b].fit })
	out := make([]Source, len(cands))
	for i, c := range cands {
		out[i] = c.src
	}
	return out
}

// Decide charges the decision round trip and returns the preferred source
// for id. It is exported for observability; Load already calls it.
func (s *Selector) Decide(id grid.BlockID) (Source, error) {
	s.Clock.Sleep(s.DecideCost)
	ranked := s.rank(id)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("loader: no source available for %v", id)
	}
	s.mu.Lock()
	s.obs[ranked[0].Name()].chosen++
	s.mu.Unlock()
	return ranked[0], nil
}

// BackgroundSource is implemented by sources that can serve a request at
// background (prefetch) priority; others are used at demand priority even
// for prefetches.
type BackgroundSource interface {
	LoadBackground(id grid.BlockID) (*grid.Block, int64, error)
}

// ErrBusy reports that a background load was shed because the source is
// saturated with demand traffic. It is not a reliability event.
var ErrBusy = errors.New("loader: source saturated, background load shed")

// Load picks the best source and loads the block at demand priority.
func (s *Selector) Load(id grid.BlockID) (*grid.Block, int64, error) {
	return s.load(id, false)
}

// LoadBackground is Load at prefetch priority: sources supporting priorities
// serve it behind queued demand requests.
func (s *Selector) LoadBackground(id grid.BlockID) (*grid.Block, int64, error) {
	return s.load(id, true)
}

// load picks the best source and loads the block, falling back to the next
// candidate on failure and updating reliability observations either way.
func (s *Selector) load(id grid.BlockID, background bool) (*grid.Block, int64, error) {
	s.Clock.Sleep(s.DecideCost)
	ranked := s.rank(id)
	if len(ranked) == 0 {
		return nil, 0, fmt.Errorf("loader: no source available for %v", id)
	}
	var errs []error
	for i, src := range ranked {
		if i == 0 {
			s.mu.Lock()
			s.obs[src.Name()].chosen++
			s.mu.Unlock()
		}
		var b *grid.Block
		var n int64
		var err error
		if bg, ok := src.(BackgroundSource); ok && background {
			b, n, err = bg.LoadBackground(id)
		} else {
			b, n, err = src.Load(id)
		}
		if errors.Is(err, ErrBusy) {
			// Shedding is not a failure: do not punish reliability, do not
			// fall back (the point is to leave the fleet alone).
			return nil, 0, ErrBusy
		}
		s.observe(src.Name(), err == nil)
		if err == nil {
			return b, n, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", src.Name(), err))
	}
	return nil, 0, fmt.Errorf("loader: all sources failed for %v: %w", id, errors.Join(errs...))
}

func (s *Selector) observe(name string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.obs[name]
	if o == nil {
		return
	}
	o.loads++
	v := 0.0
	if ok {
		v = 1
	} else {
		o.failures++
	}
	const alpha = 0.25
	o.reliability = (1-alpha)*o.reliability + alpha*v
}

// Reliability reports the current reliability estimate of a source.
func (s *Selector) Reliability(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.obs[name]; ok {
		return o.reliability
	}
	return math.NaN()
}

// ChosenCount reports how many times Decide/Load preferred the named source.
func (s *Selector) ChosenCount(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.obs[name]; ok {
		return o.chosen
	}
	return 0
}

// Collective implements collective I/O (§4.3): several proxies that need
// blocks of the same contiguous run issue one coordinated request; the
// device latency is paid once and a per-participant coordination cost is
// charged, reproducing the paper's finding that coordination often costs
// more than it saves unless runs are long.
type Collective struct {
	Dev   *storage.Device
	Clock vclock.Clock
	// CoordinationCost is charged once per participating block request.
	CoordinationCost time.Duration
}

// LoadRun loads a run of blocks in one coordinated operation and returns
// them in order: the caller is charged the coordination cost per block plus
// one device operation (single seek latency, summed transfer time). Whether
// this beats independent loads depends on how coordination cost compares to
// the saved per-request latencies — the trade-off of §4.3.
func (c *Collective) LoadRun(ids []grid.BlockID) ([]*grid.Block, int64, error) {
	if len(ids) == 0 {
		return nil, 0, nil
	}
	c.Clock.Sleep(time.Duration(len(ids)) * c.CoordinationCost)
	out, total, err := c.Dev.LoadRun(ids)
	if err != nil {
		return nil, total, fmt.Errorf("loader: collective run failed: %w", err)
	}
	return out, total, nil
}

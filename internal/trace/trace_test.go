package trace

import (
	"strings"
	"testing"
	"time"
)

func TestLogRecordsInOrder(t *testing.T) {
	l := NewLog(64)
	l.Eventf(time.Second, "scheduler", "worker %s declared dead", "w1")
	l.Eventf(2*time.Second, "worker:w1", "crashed")
	ev := l.Events()
	if len(ev) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d, Len = %d, want 2", len(ev), l.Len())
	}
	if ev[0].Msg != "worker w1 declared dead" || ev[0].Actor != "scheduler" || ev[0].At != time.Second {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if !strings.Contains(ev[1].String(), "worker:w1: crashed") {
		t.Fatalf("String() = %q", ev[1].String())
	}
}

func TestLogRingBound(t *testing.T) {
	l := NewLog(16) // minimum capacity
	for i := 0; i < 40; i++ {
		l.Eventf(time.Duration(i), "a", "event %d", i)
	}
	if l.Len() != 16 {
		t.Fatalf("Len = %d, want capacity 16", l.Len())
	}
	if l.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24", l.Dropped())
	}
	ev := l.Events()
	if ev[0].Msg != "event 24" || ev[15].Msg != "event 39" {
		t.Fatalf("ring kept wrong window: first %q last %q", ev[0].Msg, ev[15].Msg)
	}
}

func TestLogMatching(t *testing.T) {
	l := NewLog(32)
	l.Eventf(0, "scheduler", "req 1 retry 1/2")
	l.Eventf(0, "scheduler", "req 1 finished")
	l.Eventf(0, "scheduler", "req 2 retry 1/2")
	if got := len(l.Matching("retry")); got != 2 {
		t.Fatalf("Matching(retry) = %d, want 2", got)
	}
	if got := len(l.Matching("nope")); got != 0 {
		t.Fatalf("Matching(nope) = %d, want 0", got)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Eventf(0, "x", "dropped silently")
	if l.Events() != nil || l.Len() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log not inert")
	}
	if l.Matching("x") != nil {
		t.Fatal("nil log matched something")
	}
}

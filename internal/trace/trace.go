// Package trace provides a lightweight, bounded event log for the runtime:
// fault injections, worker deaths, retries, degradations and swallowed send
// errors are recorded with their virtual (or wall) timestamps so tests and
// operators can reconstruct what the fault-tolerance machinery did. The log
// is a fixed-capacity ring: old events are dropped, recording never blocks,
// and a nil *Log is a valid no-op sink.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	// At is the clock time the event was recorded.
	At time.Duration
	// Actor names the component that recorded the event ("scheduler",
	// "worker:w2", "faults", "client1").
	Actor string
	// Msg is the human-readable description.
	Msg string
}

// String formats the event for logs and test failures.
func (e Event) String() string { return fmt.Sprintf("[%v] %s: %s", e.At, e.Actor, e.Msg) }

// Log is a concurrency-safe bounded event ring.
type Log struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int64
}

// NewLog returns a log keeping at most capacity events (minimum 16).
func NewLog(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{cap: capacity}
}

// Eventf records a formatted event at time at. A nil log discards it.
func (l *Log) Eventf(at time.Duration, actor, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if len(l.events) == l.cap {
		copy(l.events, l.events[1:])
		l.events = l.events[:l.cap-1]
		l.dropped++
	}
	l.events = append(l.events, Event{At: at, Actor: actor, Msg: fmt.Sprintf(format, args...)})
	l.mu.Unlock()
}

// Events returns a snapshot of the retained events in record order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len reports the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Dropped reports how many events were evicted by the ring bound.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Matching returns retained events whose Msg contains substr (simple test
// helper; substr is matched verbatim).
func (l *Log) Matching(substr string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if strings.Contains(e.Msg, substr) {
			out = append(out, e)
		}
	}
	return out
}

// CountMatching reports how many retained events' Msg contains substr —
// the assertion form of Matching for tests that only care about occurrence
// counts (redistributions, speculations, dropped redispatches).
func (l *Log) CountMatching(substr string) int {
	n := 0
	for _, e := range l.Events() {
		if strings.Contains(e.Msg, substr) {
			n++
		}
	}
	return n
}

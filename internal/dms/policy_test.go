package dms

import (
	"math/rand"
	"testing"
)

func TestLRUVictimIsLeastRecent(t *testing.T) {
	p := NewLRU()
	p.Insert(1)
	p.Insert(2)
	p.Insert(3)
	p.Touch(1) // order: 1,3,2
	v, ok := p.Victim()
	if !ok || v != 2 {
		t.Fatalf("victim = %d,%v, want 2", v, ok)
	}
	p.Remove(2)
	v, _ = p.Victim()
	if v != 3 {
		t.Fatalf("victim after remove = %d, want 3", v)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestLRUEmpty(t *testing.T) {
	p := NewLRU()
	if _, ok := p.Victim(); ok {
		t.Fatal("empty LRU returned a victim")
	}
	p.Remove(42) // no-op, must not panic
}

func TestLFUVictimIsLeastFrequent(t *testing.T) {
	p := NewLFU()
	p.Insert(1)
	p.Insert(2)
	p.Insert(3)
	p.Touch(1)
	p.Touch(1)
	p.Touch(2)
	// counts: 1→3, 2→2, 3→1
	v, ok := p.Victim()
	if !ok || v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
}

func TestLFUTieBrokenByRecency(t *testing.T) {
	p := NewLFU()
	p.Insert(1)
	p.Insert(2) // both count 1; 1 is older
	v, _ := p.Victim()
	if v != 1 {
		t.Fatalf("victim = %d, want least recent 1", v)
	}
}

func TestFBRNewSectionDoesNotCount(t *testing.T) {
	p := NewFBR()
	for id := ItemID(1); id <= 10; id++ {
		p.Insert(id)
	}
	// Item 10 is at the front (new section): touching it repeatedly must
	// not inflate its count.
	for i := 0; i < 5; i++ {
		p.Touch(10)
	}
	if p.counts[10] != 1 {
		t.Fatalf("count of new-section item = %d, want 1 (correlated references)", p.counts[10])
	}
	// Item 1 is at the back: touching it is a genuine re-reference.
	p.Touch(1)
	if p.counts[1] != 2 {
		t.Fatalf("count of old-section item = %d, want 2", p.counts[1])
	}
}

func TestFBRVictimLeastFrequentInOldSection(t *testing.T) {
	p := NewFBR()
	p.Insert(1)
	p.Insert(2)
	p.Insert(3)
	// Re-reference item 1 while it is outside the new section: count 2.
	p.Touch(1)
	// Age items 1,3,2 to the back with fresh insertions (insertions do not
	// inflate existing counts). Final order front→back: 10..4, 1, 3, 2 with
	// counts 1 everywhere except item 1 (count 2).
	for id := ItemID(4); id <= 10; id++ {
		p.Insert(id)
	}
	// The old section is the least-recent 30% = {1, 3, 2}. LRU would evict
	// item 2 (or 1 had it not been moved); FBR must evict the least
	// frequent, skipping the hot item 1.
	v, ok := p.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	if v == 1 {
		t.Fatal("FBR evicted the frequently used item despite its age")
	}
	if v != 2 {
		t.Fatalf("victim = %d, want 2 (least frequent, least recent)", v)
	}
}

func TestFBROutperformsLRUOnFrequencySkewedTrace(t *testing.T) {
	// CFD-like trace: a small hot set re-referenced constantly (shared
	// boundary blocks) plus a long scanning stream. LRU lets the scan flush
	// the hot set; FBR keeps it. This is the paper's stated reason for
	// choosing frequency-based policies.
	trace := func() []ItemID {
		rng := rand.New(rand.NewSource(7))
		var out []ItemID
		scan := ItemID(100)
		for i := 0; i < 3000; i++ {
			if rng.Intn(100) < 60 {
				out = append(out, ItemID(rng.Intn(4))) // hot set 0..3
			} else {
				out = append(out, scan)
				scan++
			}
		}
		return out
	}
	missRate := func(p Policy, capacity int) float64 {
		cached := map[ItemID]bool{}
		misses := 0
		for _, id := range trace() {
			if cached[id] {
				p.Touch(id)
				continue
			}
			misses++
			for len(cached) >= capacity {
				v, ok := p.Victim()
				if !ok {
					break
				}
				p.Remove(v)
				delete(cached, v)
			}
			p.Insert(id)
			cached[id] = true
		}
		return float64(misses) / 3000
	}
	lru := missRate(NewLRU(), 8)
	fbr := missRate(NewFBR(), 8)
	if fbr >= lru {
		t.Fatalf("FBR miss rate %.3f not better than LRU %.3f on skewed trace", fbr, lru)
	}
}

func TestNewPolicyByName(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "fbr"} {
		if p := NewPolicy(name); p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown policy")
		}
	}()
	NewPolicy("clock")
}

func TestPoliciesSurviveRandomOperations(t *testing.T) {
	// Property: under arbitrary operation sequences, Len stays consistent
	// and Victim always returns a currently present item.
	for _, name := range []string{"lru", "lfu", "fbr"} {
		p := NewPolicy(name)
		rng := rand.New(rand.NewSource(11))
		present := map[ItemID]bool{}
		for op := 0; op < 2000; op++ {
			id := ItemID(rng.Intn(30))
			switch rng.Intn(3) {
			case 0:
				if !present[id] {
					p.Insert(id)
					present[id] = true
				}
			case 1:
				if present[id] {
					p.Touch(id)
				}
			case 2:
				if v, ok := p.Victim(); ok {
					if !present[v] {
						t.Fatalf("%s: victim %d not present", name, v)
					}
					p.Remove(v)
					delete(present, v)
				}
			}
			if p.Len() != len(present) {
				t.Fatalf("%s: Len=%d, want %d", name, p.Len(), len(present))
			}
		}
	}
}

package dms

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
	"viracocha/internal/loader"
	"viracocha/internal/prefetch"
	"viracocha/internal/storage"
	"viracocha/internal/vclock"
)

func tinyID(step, block int) grid.BlockID {
	return grid.BlockID{Dataset: "tiny", Step: step, Block: block}
}

func TestItemNaming(t *testing.T) {
	n := BlockItem(tinyID(0, 3))
	if n.Source != "tiny/t000/b003" || n.Type != "block" {
		t.Fatalf("name = %+v", n)
	}
	c := CoarseBlockItem(tinyID(0, 3), 2)
	if c.Params != "level=2" {
		t.Fatalf("coarse params = %q", c.Params)
	}
	if CoarseBlockItem(tinyID(0, 3), 0) != n {
		t.Fatal("level 0 must equal the full-resolution name")
	}
	if n.String() == c.String() {
		t.Fatal("distinct items from the same source must have distinct names")
	}
}

func TestNameServerAssignsStableIDs(t *testing.T) {
	s := NewNameServer()
	a := s.Resolve(BlockItem(tinyID(0, 0)))
	b := s.Resolve(BlockItem(tinyID(0, 1)))
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := s.Resolve(BlockItem(tinyID(0, 0))); got != a {
		t.Fatal("resolution not stable")
	}
	name, ok := s.Lookup(a)
	if !ok || name != BlockItem(tinyID(0, 0)) {
		t.Fatalf("Lookup = %v,%v", name, ok)
	}
	if _, ok := s.Lookup(999); ok {
		t.Fatal("unknown ID resolved")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestResolverCachesLocally(t *testing.T) {
	s := NewNameServer()
	r := NewResolver(s)
	id, remote := r.Resolve(BlockItem(tinyID(0, 0)))
	if !remote {
		t.Fatal("first resolution must be remote")
	}
	id2, remote := r.Resolve(BlockItem(tinyID(0, 0)))
	if remote || id2 != id {
		t.Fatal("second resolution must be local and stable")
	}
	n, ok := r.Lookup(id)
	if !ok || n != BlockItem(tinyID(0, 0)) {
		t.Fatal("reverse lookup failed")
	}
}

func blockOfSize(t *testing.T, id grid.BlockID) *grid.Block {
	t.Helper()
	return dataset.Tiny().Generate(id.Step, id.Block)
}

func TestCacheHitMissAndEviction(t *testing.T) {
	b0 := blockOfSize(t, tinyID(0, 0))
	one := b0.SizeBytes()
	c := NewCache("t", 2*one, NewLRU())
	item0, item1, item2 := ItemID(1), ItemID(2), ItemID(3)

	if _, ok := c.Get(item0); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(item0, blockOfSize(t, tinyID(0, 0)), false)
	c.Put(item1, blockOfSize(t, tinyID(0, 1)), false)
	if _, ok := c.Get(item0); !ok {
		t.Fatal("expected hit")
	}
	// Inserting a third evicts the LRU item (item1).
	ev := c.Put(item2, blockOfSize(t, tinyID(0, 2)), false)
	if len(ev) != 1 || ev[0].ID != item1 {
		t.Fatalf("evicted = %+v, want item1", ev)
	}
	if _, ok := c.Get(item1); ok {
		t.Fatal("evicted item still cached")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 2 || c.Used() != 2*one {
		t.Fatalf("len=%d used=%d", c.Len(), c.Used())
	}
}

func TestCacheRejectsOversizedItem(t *testing.T) {
	b := blockOfSize(t, tinyID(0, 0))
	c := NewCache("t", b.SizeBytes()-1, NewLRU())
	if ev := c.Put(1, b, false); ev != nil {
		t.Fatal("oversized put evicted items")
	}
	if c.Stats().RejectedLarge != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := NewCache("t", 1<<30, NewFBR())
	c.Put(1, blockOfSize(t, tinyID(0, 0)), true)
	st := c.Stats()
	if st.PrefetchPuts != 1 || st.PrefetchUsed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	c.Get(1)
	c.Get(1)
	st = c.Stats()
	if st.PrefetchUsed != 1 {
		t.Fatalf("PrefetchUsed = %d, want exactly 1", st.PrefetchUsed)
	}
}

func TestCachePeekHasNoSideEffects(t *testing.T) {
	c := NewCache("t", 1<<30, NewLRU())
	c.Put(1, blockOfSize(t, tinyID(0, 0)), false)
	before := c.Stats()
	if _, ok := c.Peek(1); !ok {
		t.Fatal("peek missed")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("peek hit absent item")
	}
	if c.Stats() != before {
		t.Fatal("peek changed statistics")
	}
}

func TestCacheDuplicatePutKeepsOneCopy(t *testing.T) {
	c := NewCache("t", 1<<30, NewLRU())
	b := blockOfSize(t, tinyID(0, 0))
	c.Put(1, b, false)
	c.Put(1, b, false)
	if c.Len() != 1 || c.Used() != b.SizeBytes() {
		t.Fatalf("len=%d used=%d after duplicate put", c.Len(), c.Used())
	}
}

func TestTieredSpillAndPromote(t *testing.T) {
	v := vclock.NewVirtual()
	b0 := blockOfSize(t, tinyID(0, 0))
	one := b0.SizeBytes()
	l1 := NewCache("L1", one, NewLRU()) // holds exactly 1 block
	l2 := NewCache("L2", 10*one, NewLRU())
	tc := &Tiered{
		Clock:       v,
		L1:          l1,
		L2:          l2,
		SpillCost:   func(int64) time.Duration { return time.Millisecond },
		PromoteCost: func(int64) time.Duration { return 2 * time.Millisecond },
	}
	v.Go(func() {
		tc.Put(1, blockOfSize(t, tinyID(0, 0)), false)
		tc.Put(2, blockOfSize(t, tinyID(0, 1)), false) // spills item 1 to L2
		if l2.Len() != 1 {
			t.Errorf("L2 len = %d, want 1 after spill", l2.Len())
		}
		// Getting item 1 promotes it back (charging PromoteCost) and spills
		// item 2.
		if _, ok := tc.Get(1); !ok {
			t.Error("item 1 lost")
		}
		if _, ok := l1.Peek(1); !ok {
			t.Error("item 1 not promoted to L1")
		}
		if _, ok := tc.Peek(2); !ok {
			t.Error("item 2 vanished")
		}
	})
	v.Wait()
	// Costs: spill(1) + promote(1) + spill(2) = 1 + 2 + 1 ms.
	if v.Now() != 4*time.Millisecond {
		t.Fatalf("charged %v, want 4ms", v.Now())
	}
}

func TestTieredWithoutL2(t *testing.T) {
	v := vclock.NewVirtual()
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	tc := &Tiered{Clock: v, L1: NewCache("L1", one, NewLRU())}
	tc.Put(1, blockOfSize(t, tinyID(0, 0)), false)
	tc.Put(2, blockOfSize(t, tinyID(0, 1)), false)
	if _, ok := tc.Get(1); ok {
		t.Fatal("item survived eviction without an L2")
	}
	tc.Clear()
	if _, ok := tc.Peek(2); ok {
		t.Fatal("clear did not empty the cache")
	}
}

// testServer builds a DMS server over a simulated disk holding the tiny
// data set.
func testServer(v vclock.Clock, cfg Config) (*Server, *storage.Device) {
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, time.Millisecond, 10e6, 1)
	src := &loader.DeviceSource{Dev: dev, BytesFor: func(grid.BlockID) int64 { return 4096 }}
	return NewServer(v, cfg, src), dev
}

func TestProxyGetCachesBlocks(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, dev := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		b1, err := p.Get(tinyID(0, 0))
		if err != nil {
			t.Error(err)
			return
		}
		b2, err := p.Get(tinyID(0, 0))
		if err != nil || b2 != b1 {
			t.Error("second get did not come from cache")
		}
	})
	v.Wait()
	if dev.Stats().Loads != 1 {
		t.Fatalf("device loads = %d, want 1", dev.Stats().Loads)
	}
	st := p.Stats()
	if st.DemandRequests != 2 || st.DemandLoads != 1 {
		t.Fatalf("proxy stats = %+v", st)
	}
}

func TestProxyChargesNameAndDecideCosts(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 3 * time.Millisecond
	cfg.NameCost = 5 * time.Millisecond
	cfg.LocalDiskBandwidth = 0
	srv, _ := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		p.Get(tinyID(0, 0))
	})
	v.Wait()
	// 5ms name + 3ms decide + 1ms latency + 4096B/10MBps ≈ 0.41ms transfer.
	min := 9 * time.Millisecond
	if v.Now() < min {
		t.Fatalf("total %v, want ≥ %v", v.Now(), min)
	}
	if p.Stats().RemoteResolves != 1 {
		t.Fatalf("RemoteResolves = %d", p.Stats().RemoteResolves)
	}
}

func TestProxyPrefetchOverlapsWithCompute(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	// Load cost per block: 1ms latency + 4096/10e6 s ≈ 1.41ms.
	v.Go(func() {
		p.Prefetch(tinyID(0, 1))
		v.Sleep(50 * time.Millisecond) // simulated compute, overlapping the load
		start := v.Now()
		if _, err := p.Get(tinyID(0, 1)); err != nil {
			t.Error(err)
		}
		if wait := v.Now() - start; wait > time.Millisecond {
			t.Errorf("demand get waited %v despite completed prefetch", wait)
		}
	})
	v.Wait()
	st := p.Stats()
	if st.PrefetchIssued != 1 || st.PrefetchDone != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyDemandWaitsOnInflightPrefetch(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, dev := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		p.Prefetch(tinyID(0, 2))
		// Demand the same block immediately: must wait for the in-flight
		// load, not start a second one.
		if _, err := p.Get(tinyID(0, 2)); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	if dev.Stats().Loads != 1 {
		t.Fatalf("device loads = %d, want 1 (no duplicate load)", dev.Stats().Loads)
	}
	if p.Stats().WaitedInflight == 0 {
		t.Fatal("demand did not register the in-flight wait")
	}
}

func TestProxySystemPrefetchViaOBL(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	pf := prefetch.NewOBL(prefetch.FileOrder(2, 4))
	p := srv.NewProxy("w0", pf)
	v.Go(func() {
		if _, err := p.Get(tinyID(0, 0)); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	if p.Stats().PrefetchIssued == 0 {
		t.Fatal("OBL issued no system prefetch")
	}
	// The prefetched successor must now be cached.
	item, _ := p.Resolver.Resolve(BlockItem(tinyID(0, 1)))
	if _, ok := p.Cache.Peek(item); !ok {
		t.Fatal("successor block not in cache after system prefetch")
	}
}

func TestPeerTransferBetweenProxies(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	// Make the disk very slow so the peer path clearly wins.
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, time.Second, 1e6, 1)
	src := &loader.DeviceSource{Dev: dev, BytesFor: func(grid.BlockID) int64 { return 4096 }}
	srv := NewServer(v, cfg, src)
	p0 := srv.NewProxy("w0", nil)
	p1 := srv.NewProxy("w1", nil)
	v.Go(func() {
		if _, err := p0.Get(tinyID(0, 0)); err != nil { // p0 pays the disk
			t.Error(err)
			return
		}
		mark := v.Now()
		if _, err := p1.Get(tinyID(0, 0)); err != nil { // p1 should use the peer
			t.Error(err)
			return
		}
		if took := v.Now() - mark; took >= time.Second {
			t.Errorf("peer transfer took %v: fell back to disk", took)
		}
	})
	v.Wait()
	if dev.Stats().Loads != 1 {
		t.Fatalf("disk loads = %d, want 1 (second load from peer)", dev.Stats().Loads)
	}
}

func TestGetCoarseCachesPerLevel(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, dev := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		c1, err := p.GetCoarse(tinyID(0, 0), 1)
		if err != nil {
			t.Error(err)
			return
		}
		full, _ := p.GetCoarse(tinyID(0, 0), 0)
		if c1.NumNodes() >= full.NumNodes() {
			t.Error("coarse level not smaller than full block")
		}
		c1b, _ := p.GetCoarse(tinyID(0, 0), 1)
		if c1b != c1 {
			t.Error("coarse level not served from cache")
		}
	})
	v.Wait()
	if dev.Stats().Loads != 1 {
		t.Fatalf("device loads = %d, want 1", dev.Stats().Loads)
	}
}

func TestDropAllCachesForcesReload(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, dev := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		p.Get(tinyID(0, 0))
		srv.DropAllCaches()
		p.Get(tinyID(0, 0))
	})
	v.Wait()
	if dev.Stats().Loads != 2 {
		t.Fatalf("loads = %d, want 2 after cache drop", dev.Stats().Loads)
	}
}

func TestAggregateStats(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	p0 := srv.NewProxy("w0", nil)
	p1 := srv.NewProxy("w1", nil)
	v.Go(func() {
		p0.Get(tinyID(0, 0))
		p0.Get(tinyID(0, 0))
		p1.Get(tinyID(0, 1))
	})
	v.Wait()
	cs, ps := srv.AggregateStats()
	if ps.DemandRequests != 3 {
		t.Fatalf("DemandRequests = %d", ps.DemandRequests)
	}
	if cs.Hits != 1 {
		t.Fatalf("aggregate hits = %d, want 1", cs.Hits)
	}
	if len(srv.Proxies()) != 2 {
		t.Fatal("proxy registry wrong")
	}
}

func TestProxiesConcurrentHammer(t *testing.T) {
	// Many workers hammer overlapping blocks with demand gets and
	// prefetches; the DMS must stay consistent (no duplicate loads beyond
	// coordination races, no lost blocks).
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	var proxies []*Proxy
	for i := 0; i < 6; i++ {
		proxies = append(proxies, srv.NewProxy(fmt.Sprintf("w%d", i), nil))
	}
	for _, p := range proxies {
		p := p
		v.Go(func() {
			for rep := 0; rep < 3; rep++ {
				for s := 0; s < 2; s++ {
					for b := 0; b < 4; b++ {
						p.Prefetch(tinyID(s, (b+1)%4))
						blk, err := p.Get(tinyID(s, b))
						if err != nil {
							t.Errorf("get: %v", err)
							return
						}
						if blk.ID != tinyID(s, b) {
							t.Errorf("wrong block: %v", blk.ID)
							return
						}
					}
				}
			}
		})
	}
	v.Wait()
	_, ps := srv.AggregateStats()
	if ps.DemandRequests != 6*3*2*4 {
		t.Fatalf("demand requests = %d", ps.DemandRequests)
	}
}

func TestStatsUnitRingAndAggregates(t *testing.T) {
	s := NewStatsUnit(4)
	for i := 0; i < 6; i++ {
		s.Record(tinyID(0, i%3), i%2 == 0, time.Duration(i)*time.Second)
	}
	recent := s.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	// Oldest-first ordering: entries 2,3,4,5.
	if recent[0].At != 2*time.Second || recent[3].At != 5*time.Second {
		t.Fatalf("ring order wrong: %+v", recent)
	}
	// Block 0 was requested at i=0 (miss) and i=3 (hit).
	it := s.Item(tinyID(0, 0))
	if it.Requests != 2 || it.Misses != 1 || it.LastAt != 3*time.Second {
		t.Fatalf("item stats = %+v", it)
	}
	if s.TotalRequests() != 6 {
		t.Fatalf("total = %d", s.TotalRequests())
	}
	if got := s.Item(tinyID(5, 5)); got.Requests != 0 {
		t.Fatal("phantom item stats")
	}
}

func TestStatsUnitHottest(t *testing.T) {
	s := NewStatsUnit(0)
	for i := 0; i < 5; i++ {
		s.Record(tinyID(0, 1), false, 0)
	}
	for i := 0; i < 2; i++ {
		s.Record(tinyID(0, 2), false, 0)
	}
	s.Record(tinyID(0, 3), false, 0)
	hot := s.Hottest(2)
	if len(hot) != 2 || hot[0] != tinyID(0, 1) || hot[1] != tinyID(0, 2) {
		t.Fatalf("hottest = %v", hot)
	}
}

func TestProxyFeedsStatsUnit(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		p.Get(tinyID(0, 0)) // miss
		p.Get(tinyID(0, 0)) // hit
		p.Get(tinyID(0, 1)) // miss
	})
	v.Wait()
	if p.StatsUnit.TotalRequests() != 3 {
		t.Fatalf("recorded %d requests", p.StatsUnit.TotalRequests())
	}
	it := p.StatsUnit.Item(tinyID(0, 0))
	if it.Requests != 2 || it.Misses != 1 {
		t.Fatalf("item = %+v", it)
	}
	rec := p.StatsUnit.Recent(3)
	if len(rec) != 3 || !rec[0].Miss || rec[1].Miss {
		t.Fatalf("recent = %+v", rec)
	}
}

func TestCacheAgainstReferenceModel(t *testing.T) {
	// Property: under random get/put sequences the cache's hit/miss
	// accounting and content must match a naive reference model driven by
	// the same policy decisions.
	rng := rand.New(rand.NewSource(99))
	block := blockOfSize(t, tinyID(0, 0))
	one := block.SizeBytes()
	const slots = 5
	c := NewCache("model", slots*one, NewLRU())
	ref := map[ItemID]bool{}
	var refHits, refMisses int64
	for op := 0; op < 5000; op++ {
		id := ItemID(rng.Intn(12) + 1)
		if rng.Intn(2) == 0 {
			_, ok := c.Get(id)
			if ok != ref[id] {
				t.Fatalf("op %d: Get(%d) = %v, model says %v", op, id, ok, ref[id])
			}
			if ok {
				refHits++
			} else {
				refMisses++
			}
		} else {
			ev := c.Put(id, block, false)
			for _, e := range ev {
				delete(ref, e.ID)
			}
			ref[id] = true
			if len(ref) > slots {
				t.Fatalf("op %d: model holds %d items, capacity %d", op, len(ref), slots)
			}
			if c.Len() != len(ref) {
				t.Fatalf("op %d: cache len %d, model %d", op, c.Len(), len(ref))
			}
		}
	}
	st := c.Stats()
	if st.Hits != refHits || st.Misses != refMisses {
		t.Fatalf("stats = %d/%d, model = %d/%d", st.Hits, st.Misses, refHits, refMisses)
	}
}

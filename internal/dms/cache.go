package dms

import (
	"sync"
	"time"

	"viracocha/internal/vclock"
)

// Entity is anything the DMS can cache: demand-loaded grid blocks, and
// derived data computed from them — min/max acceleration indexes, λ2 scalar
// fields, BSP trees. The paper's DMS manages "data entities", not files
// (§4); the only thing a cache needs from one is its size.
type Entity interface {
	SizeBytes() int64
}

// IsDerived reports whether the entity is derived (re-computable from a
// block) rather than demand-loaded. Derived types opt in by declaring a
// DerivedEntity() marker method; under memory pressure the cache evicts
// derived entities before demand blocks, because rebuilding an index is
// cheaper than re-reading a block from storage.
func IsDerived(e Entity) bool {
	_, ok := e.(interface{ DerivedEntity() })
	return ok
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	BytesEvicted  int64
	PrefetchPuts   int64 // items inserted by the prefetcher
	PrefetchUsed   int64 // prefetched items later hit by a demand request
	RejectedLarge  int64 // items larger than the whole cache
	RejectedBudget int64 // items refused because the memory budget was exhausted
	DerivedEvictions int64 // evictions that hit a derived entity
}

// entry is one cached item.
type entry struct {
	id         ItemID
	item       Entity
	size       int64
	prefetched bool
	derived    bool
}

// Evicted describes an item pushed out of a cache, so a tiered cache can
// spill it to the next level.
type Evicted struct {
	ID   ItemID
	Item Entity
	Size int64
}

// Cache is a byte-capacity entity cache with a pluggable replacement policy.
// It is safe for concurrent use. Demand blocks and derived entities are
// tracked by two instances of the same policy so that victim selection can
// sacrifice derived (re-computable) data first.
type Cache struct {
	name     string
	capacity int64

	// Budget, when non-nil, is a byte budget shared with other caches (the
	// other tier, other proxies): every insert reserves against it and every
	// eviction or removal releases. An insert that cannot reserve — even
	// after evicting its own victims — is refused and the item served
	// uncached.
	Budget *Budget

	mu      sync.Mutex
	used    int64
	items   map[ItemID]*entry
	policy  Policy // demand blocks
	derived Policy // derived entities, evicted first
	stats   CacheStats
}

// NewCache builds a cache with the given byte capacity and policy. A second
// instance of the same policy kind governs derived entities.
func NewCache(name string, capacity int64, policy Policy) *Cache {
	return &Cache{
		name:     name,
		capacity: capacity,
		items:    map[ItemID]*entry{},
		policy:   policy,
		derived:  siblingPolicy(policy),
	}
}

// siblingPolicy builds a fresh policy of the same kind; custom policies with
// unregistered names fall back to LRU for their derived side.
func siblingPolicy(p Policy) (out Policy) {
	defer func() {
		if recover() != nil {
			out = NewLRU()
		}
	}()
	return NewPolicy(p.Name())
}

// policyFor returns the policy tracking the entry.
func (c *Cache) policyFor(e *entry) Policy {
	if e.derived {
		return c.derived
	}
	return c.policy
}

// victimLocked picks the next eviction victim: derived entities go first —
// an index or BSP tree is rebuilt from its block in memory, while a demand
// block costs a storage or peer round trip. Caller holds c.mu.
func (c *Cache) victimLocked() (ItemID, bool) {
	if vid, ok := c.derived.Victim(); ok {
		return vid, true
	}
	return c.policy.Victim()
}

// Get returns the cached entity, updating policy and statistics. A demand
// hit on a prefetched item counts it as a useful prefetch.
func (c *Cache) Get(id ItemID) (Entity, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if e.prefetched {
		c.stats.PrefetchUsed++
		e.prefetched = false
	}
	c.policyFor(e).Touch(id)
	return e.item, true
}

// Peek reports whether the item is cached without perturbing the policy or
// statistics; the peer-transfer source uses it for availability checks.
func (c *Cache) Peek(id ItemID) (Entity, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[id]
	if !ok {
		return nil, false
	}
	return e.item, true
}

// Put inserts an entity, evicting per policy until it fits, and returns the
// evicted items so a tiered cache can spill them. Items larger than the
// whole cache are rejected (returned in Evicted with ok=false semantics is
// avoided; they are simply not cached and counted).
func (c *Cache) Put(id ItemID, item Entity, prefetched bool) []Evicted {
	ev, _ := c.put(id, item, prefetched)
	return ev
}

// PutOK is Put, additionally reporting whether the item actually resides in
// the cache afterwards (false when rejected for size or memory budget).
func (c *Cache) PutOK(id ItemID, item Entity, prefetched bool) ([]Evicted, bool) {
	return c.put(id, item, prefetched)
}

func (c *Cache) put(id ItemID, item Entity, prefetched bool) ([]Evicted, bool) {
	size := item.SizeBytes()
	derived := IsDerived(item)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[id]; ok {
		// Re-insert of a cached item: refresh recency; a demand re-insert
		// clears the prefetched mark.
		c.policyFor(e).Touch(id)
		if !prefetched {
			e.prefetched = false
		}
		return nil, true
	}
	if size > c.capacity {
		c.stats.RejectedLarge++
		return nil, false
	}
	var out []Evicted
	for c.used+size > c.capacity {
		vid, ok := c.victimLocked()
		if !ok {
			break
		}
		out = append(out, c.evictLocked(vid))
	}
	// Memory budget: reserve before inserting, evicting our own victims
	// under pressure. When nothing is left to evict the insert is refused
	// and the item is served uncached (degraded, but never over budget).
	for !c.Budget.TryReserve(size) {
		vid, ok := c.victimLocked()
		if !ok {
			c.Budget.noteRejected()
			c.stats.RejectedBudget++
			return out, false
		}
		out = append(out, c.evictLocked(vid))
	}
	c.items[id] = &entry{id: id, item: item, size: size, prefetched: prefetched, derived: derived}
	if derived {
		c.derived.Insert(id)
	} else {
		c.policy.Insert(id)
	}
	c.used += size
	c.stats.Puts++
	if prefetched {
		c.stats.PrefetchPuts++
	}
	return out, true
}

// evictLocked removes the victim, releasing capacity and budget. Caller
// holds c.mu.
func (c *Cache) evictLocked(vid ItemID) Evicted {
	ve := c.items[vid]
	c.policyFor(ve).Remove(vid)
	delete(c.items, vid)
	c.used -= ve.size
	c.Budget.Release(ve.size)
	c.stats.Evictions++
	c.stats.BytesEvicted += ve.size
	if ve.derived {
		c.stats.DerivedEvictions++
	}
	return Evicted{ID: vid, Item: ve.item, Size: ve.size}
}

// Remove drops an item if present.
func (c *Cache) Remove(id ItemID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[id]; ok {
		c.policyFor(e).Remove(id)
		delete(c.items, id)
		c.used -= e.size
		c.Budget.Release(e.size)
	}
}

// Clear empties the cache (used to produce cold-cache measurements).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, e := range c.items {
		c.policyFor(e).Remove(id)
	}
	c.Budget.Release(c.used)
	c.items = map[ItemID]*entry{}
	c.used = 0
}

// Used reports the occupied bytes.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of cached items.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a copy of the statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Tiered is the paper's two-tier cache: a primary cache in main memory and
// an optional secondary cache on the node's local disk. Primary evictions
// spill to the secondary; secondary hits are promoted back, charging the
// local-disk read cost to the requesting actor.
type Tiered struct {
	Clock vclock.Clock
	L1    *Cache
	L2    *Cache // may be nil: no secondary cache
	// SpillCost and PromoteCost model local-disk write/read of an item of
	// the given size. Nil means free.
	SpillCost   func(bytes int64) time.Duration
	PromoteCost func(bytes int64) time.Duration
}

// Get looks the item up in L1 then L2, promoting on a secondary hit.
func (t *Tiered) Get(id ItemID) (Entity, bool) {
	if e, ok := t.L1.Get(id); ok {
		return e, true
	}
	if t.L2 == nil {
		return nil, false
	}
	e, ok := t.L2.Get(id)
	if !ok {
		return nil, false
	}
	t.L2.Remove(id)
	if t.PromoteCost != nil {
		t.Clock.Sleep(t.PromoteCost(e.SizeBytes()))
	}
	t.insertL1(id, e, false)
	return e, true
}

// Put inserts into the primary cache, spilling evictions to the secondary.
// It reports whether the item is resident in either tier afterwards (false
// when the memory budget refused it).
func (t *Tiered) Put(id ItemID, item Entity, prefetched bool) bool {
	return t.insertL1(id, item, prefetched)
}

func (t *Tiered) insertL1(id ItemID, item Entity, prefetched bool) bool {
	spilled, ok := t.L1.PutOK(id, item, prefetched)
	if t.L2 == nil {
		return ok
	}
	for _, ev := range spilled {
		if t.SpillCost != nil {
			t.Clock.Sleep(t.SpillCost(ev.Size))
		}
		t.L2.Put(ev.ID, ev.Item, false)
	}
	return ok
}

// Budget returns the shared memory budget (nil = unlimited). Both tiers are
// wired to the same budget, so the primary's is representative.
func (t *Tiered) Budget() *Budget { return t.L1.Budget }

// Peek checks both tiers without side effects.
func (t *Tiered) Peek(id ItemID) (Entity, bool) {
	if e, ok := t.L1.Peek(id); ok {
		return e, true
	}
	if t.L2 == nil {
		return nil, false
	}
	return t.L2.Peek(id)
}

// Clear empties both tiers.
func (t *Tiered) Clear() {
	t.L1.Clear()
	if t.L2 != nil {
		t.L2.Clear()
	}
}

// Remove drops an item from both tiers (releasing its budget bytes) without
// counting an eviction — the invalidation path, not the pressure path.
func (t *Tiered) Remove(id ItemID) {
	t.L1.Remove(id)
	if t.L2 != nil {
		t.L2.Remove(id)
	}
}

package dms

import (
	"testing"
	"time"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
	"viracocha/internal/loader"
	"viracocha/internal/storage"
	"viracocha/internal/vclock"
)

// indexFor builds a min/max index over a tiny block's pressure field.
func indexFor(t *testing.T, id grid.BlockID) *grid.MinMaxIndex {
	t.Helper()
	b := blockOfSize(t, id)
	return grid.BuildMinMax(b, "pressure", b.Scalars["pressure"])
}

func TestDerivedItemNaming(t *testing.T) {
	id := tinyID(0, 3)
	names := []ItemName{
		BlockItem(id),
		IndexItem(id, "pressure"),
		IndexItem(id, "lambda2"),
		Lambda2Item(id),
		BSPItem(id, "pressure"),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n.String()] {
			t.Fatalf("duplicate item name %q", n.String())
		}
		seen[n.String()] = true
	}
	if IndexItem(id, "pressure") != IndexItem(id, "pressure") {
		t.Fatal("index naming not stable")
	}
}

// TestDerivedEvictedBeforeDemandBlocks pins the dual-policy victim order:
// under capacity pressure a derived entity is sacrificed before any demand
// block, even when the derived entity is the most recently used item.
func TestDerivedEvictedBeforeDemandBlocks(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	c := NewCache("t", 2*one, NewLRU())
	blk0, blk1, idx := ItemID(1), ItemID(2), ItemID(3)

	c.Put(idx, indexFor(t, tinyID(0, 0)), false)
	c.Put(blk0, blockOfSize(t, tinyID(0, 0)), false)
	if _, ok := c.Get(idx); !ok { // idx is now the most recently used item
		t.Fatal("index not cached")
	}
	ev := c.Put(blk1, blockOfSize(t, tinyID(0, 1)), false)
	if len(ev) != 1 || ev[0].ID != idx {
		t.Fatalf("evicted %+v, want the derived index despite its recency", ev)
	}
	if _, ok := c.Peek(blk0); !ok {
		t.Fatal("demand block evicted while a derived entity was resident")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DerivedEvictions != 1 {
		t.Fatalf("stats = %+v, want the eviction counted as derived", st)
	}
	if c.Used() != 2*one {
		t.Fatalf("byte accounting off: used %d, want %d", c.Used(), 2*one)
	}
}

// TestDerivedOnlyCacheFallsBackToBlocks: when no derived entity is resident,
// pressure falls on the demand blocks as before.
func TestDerivedEvictionFallsBackToBlocks(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	c := NewCache("t", 2*one, NewLRU())
	c.Put(1, blockOfSize(t, tinyID(0, 0)), false)
	c.Put(2, blockOfSize(t, tinyID(0, 1)), false)
	ev := c.Put(3, blockOfSize(t, tinyID(0, 2)), false)
	if len(ev) != 1 || ev[0].ID != ItemID(1) {
		t.Fatalf("evicted %+v, want the LRU demand block", ev)
	}
	if c.Stats().DerivedEvictions != 0 {
		t.Fatal("block eviction miscounted as derived")
	}
}

// TestDerivedEvictionReleasesBudget checks the shared-budget accounting:
// admitting, evicting and removing derived entities reserve and release the
// exact byte sizes.
func TestDerivedEvictionReleasesBudget(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	idx := indexFor(t, tinyID(0, 0))
	budget := NewBudget(2 * one)
	c := NewCache("t", 8*one, NewLRU()) // capacity ample: only the budget binds
	c.Budget = budget

	c.Put(1, idx, false)
	c.Put(2, blockOfSize(t, tinyID(0, 0)), false)
	if got := budget.Stats().Used; got != one+idx.SizeBytes() {
		t.Fatalf("budget used %d, want %d", got, one+idx.SizeBytes())
	}
	// The next block overflows the budget by exactly the index's bytes: the
	// retry loop must evict the derived index — not the resident demand
	// block — release its bytes, and then admit the block.
	_, ok := c.PutOK(3, blockOfSize(t, tinyID(0, 1)), false)
	if !ok {
		t.Fatal("insert refused although evicting the index makes room")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DerivedEvictions != 1 {
		t.Fatalf("stats = %+v, want exactly one eviction, of the derived index", st)
	}
	if _, resident := c.Peek(2); !resident {
		t.Fatal("demand block sacrificed while a derived entity was resident")
	}
	if got := budget.Stats().Used; got != 2*one {
		t.Fatalf("budget used %d after eviction, want %d", got, 2*one)
	}
	c.Remove(2)
	c.Remove(3)
	if got := budget.Stats().Used; got != 0 {
		t.Fatalf("budget used %d after removals, want 0", got)
	}
}

func TestProxyDerivedPutGetStats(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	name := IndexItem(tinyID(0, 0), "pressure")
	v.Go(func() {
		if _, ok := p.GetDerived(name); ok {
			t.Error("empty cache returned a derived entity")
		}
		if p.HasDerived(name) {
			t.Error("HasDerived true before any put")
		}
		if !p.PutDerived(name, indexFor(t, tinyID(0, 0))) {
			t.Error("unbudgeted put refused")
		}
		if !p.HasDerived(name) {
			t.Error("HasDerived false after put")
		}
		if _, ok := p.GetDerived(name); !ok {
			t.Error("derived entity not served from cache")
		}
	})
	v.Wait()
	st := p.Stats()
	if st.DerivedMisses != 1 || st.DerivedHits != 1 || st.DerivedPuts != 1 || st.DerivedUncached != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDerivedPeerTransfer: a derived entity built by one worker is served to
// another over the peer fabric instead of being rebuilt — the same §4
// cooperation the demand blocks get.
func TestDerivedPeerTransfer(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	dev := storage.NewDevice("disk", &storage.GenBackend{Desc: dataset.Tiny()}, v, time.Millisecond, 10e6, 1)
	src := &loader.DeviceSource{Dev: dev, BytesFor: func(grid.BlockID) int64 { return 4096 }}
	srv := NewServer(v, cfg, src)
	p0 := srv.NewProxy("w0", nil)
	p0.Peers = srv
	p1 := srv.NewProxy("w1", nil)
	p1.Peers = srv
	name := IndexItem(tinyID(0, 0), "pressure")
	idx := indexFor(t, tinyID(0, 0))
	v.Go(func() {
		if !p0.PutDerived(name, idx) {
			t.Error("p0 put refused")
			return
		}
		e, ok := p1.GetDerived(name)
		if !ok {
			t.Error("p1 did not find the peer's derived entity")
			return
		}
		if e.(*grid.MinMaxIndex) != idx {
			t.Error("peer transfer returned a different entity")
		}
		// Second get is a local hit: the transfer cached it at p1.
		if _, ok := p1.GetDerived(name); !ok {
			t.Error("transferred entity not cached locally")
		}
	})
	v.Wait()
	if st := p1.Stats(); st.DerivedPeerHits != 1 || st.DerivedHits != 2 {
		t.Fatalf("p1 stats = %+v, want 1 peer hit then 1 local hit", st)
	}
	_, ps := srv.AggregateStats()
	if ps.DerivedPeerHits != 1 || ps.DerivedPuts < 1 {
		t.Fatalf("aggregate stats missing derived counters: %+v", ps)
	}
}

// TestOnPrefetchedHookFires: the worker's index ride-along builds on this —
// the hook must run after a speculative load lands its block in the cache.
func TestOnPrefetchedHookFires(t *testing.T) {
	v := vclock.NewVirtual()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	srv, _ := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	var got []grid.BlockID
	p.OnPrefetched = func(b *grid.Block) { got = append(got, b.ID) }
	v.Go(func() {
		p.Prefetch(tinyID(0, 1))
		v.Sleep(50 * time.Millisecond) // let the speculative load complete
		if _, err := p.Get(tinyID(0, 1)); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	if len(got) != 1 || got[0] != tinyID(0, 1) {
		t.Fatalf("OnPrefetched saw %v, want exactly the prefetched block", got)
	}
}

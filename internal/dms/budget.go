package dms

import "sync"

// Budget is a byte budget shared across both cache tiers of every proxy on a
// DMS server: the sum of resident cache bytes never exceeds the limit, no
// matter how the individual tiers are sized. Caches reserve before inserting
// and release as entries are evicted or removed; the prefetcher consults
// Pressure to shed speculative loads before they compete with demand loads.
//
// A nil *Budget means "unlimited" and every method is safe to call on it, so
// callers never need to branch.
type Budget struct {
	mu       sync.Mutex
	limit    int64
	used     int64
	peak     int64
	rejected int64
	shed     int64
}

// NewBudget creates a budget of limit bytes; limit <= 0 returns nil
// (unlimited).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// TryReserve claims n bytes, reporting false when the reservation would
// exceed the limit. The caller then evicts and retries, or gives up and
// serves the data uncached.
func (b *Budget) TryReserve(n int64) bool {
	if b == nil || n <= 0 {
		return b == nil || n == 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.limit {
		return false
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return true
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// Pressure reports the fraction of the budget in use (0 when unlimited).
func (b *Budget) Pressure() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(b.used) / float64(b.limit)
}

// NoteShed counts one prefetch speculation shed under memory pressure.
func (b *Budget) NoteShed() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.shed++
	b.mu.Unlock()
}

// noteRejected counts one cache insert refused for lack of budget.
func (b *Budget) noteRejected() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.rejected++
	b.mu.Unlock()
}

// BudgetStats is a snapshot of the budget's accounting.
type BudgetStats struct {
	Limit    int64 // configured byte limit (0 = unlimited)
	Used     int64 // bytes currently reserved
	Peak     int64 // high-water mark of Used
	Rejected int64 // cache inserts refused for lack of budget
	Shed     int64 // prefetch speculations shed under pressure
}

// Stats snapshots the budget (zero value for a nil/unlimited budget).
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Limit: b.limit, Used: b.used, Peak: b.peak, Rejected: b.rejected, Shed: b.shed}
}

package dms

// Policy is a cache replacement policy over item IDs. The cache calls Insert
// when an item enters, Touch on every re-reference, Victim to choose an
// eviction candidate, and Remove when an item leaves. Policies are not
// safe for concurrent use; the owning cache serializes access.
type Policy interface {
	Name() string
	Insert(id ItemID)
	Touch(id ItemID)
	Victim() (ItemID, bool)
	Remove(id ItemID)
	Len() int
}

// recencyList keeps item IDs in most-recently-used-first order. Cache
// populations are small (tens to hundreds of blocks), so O(n) maintenance
// is simpler and fast enough; the asymptotics of the experiments live in
// the data, not here.
type recencyList struct {
	order []ItemID // index 0 = most recently used
}

func (l *recencyList) insertFront(id ItemID) {
	l.order = append(l.order, 0)
	copy(l.order[1:], l.order)
	l.order[0] = id
}

func (l *recencyList) indexOf(id ItemID) int {
	for i, x := range l.order {
		if x == id {
			return i
		}
	}
	return -1
}

func (l *recencyList) moveToFront(id ItemID) {
	i := l.indexOf(id)
	if i <= 0 {
		if i < 0 {
			l.insertFront(id)
		}
		return
	}
	copy(l.order[1:i+1], l.order[:i])
	l.order[0] = id
}

func (l *recencyList) remove(id ItemID) {
	i := l.indexOf(id)
	if i < 0 {
		return
	}
	l.order = append(l.order[:i], l.order[i+1:]...)
}

// LRU evicts the least recently used item.
type LRU struct {
	list recencyList
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// Insert implements Policy.
func (p *LRU) Insert(id ItemID) { p.list.insertFront(id) }

// Touch implements Policy.
func (p *LRU) Touch(id ItemID) { p.list.moveToFront(id) }

// Victim implements Policy.
func (p *LRU) Victim() (ItemID, bool) {
	if len(p.list.order) == 0 {
		return 0, false
	}
	return p.list.order[len(p.list.order)-1], true
}

// Remove implements Policy.
func (p *LRU) Remove(id ItemID) { p.list.remove(id) }

// Len implements Policy.
func (p *LRU) Len() int { return len(p.list.order) }

// LFU evicts the least frequently used item, breaking ties by recency.
type LFU struct {
	list   recencyList
	counts map[ItemID]int64
}

// NewLFU returns an LFU policy.
func NewLFU() *LFU { return &LFU{counts: map[ItemID]int64{}} }

// Name implements Policy.
func (*LFU) Name() string { return "lfu" }

// Insert implements Policy.
func (p *LFU) Insert(id ItemID) {
	p.list.insertFront(id)
	p.counts[id] = 1
}

// Touch implements Policy.
func (p *LFU) Touch(id ItemID) {
	p.list.moveToFront(id)
	p.counts[id]++
}

// Victim implements Policy: the lowest count; among equals, the least
// recently used.
func (p *LFU) Victim() (ItemID, bool) {
	if len(p.list.order) == 0 {
		return 0, false
	}
	best := ItemID(0)
	bestCount := int64(-1)
	// Scan back-to-front so that on count ties the least recent wins.
	for i := len(p.list.order) - 1; i >= 0; i-- {
		id := p.list.order[i]
		if c := p.counts[id]; bestCount == -1 || c < bestCount {
			best, bestCount = id, c
		}
	}
	return best, true
}

// Remove implements Policy.
func (p *LFU) Remove(id ItemID) {
	p.list.remove(id)
	delete(p.counts, id)
}

// Len implements Policy.
func (p *LFU) Len() int { return len(p.list.order) }

// FBR is frequency-based replacement (Robinson & Devarakonda 1990), the
// policy the paper found best for CFD request streams: an LRU-ordered list
// is divided into a "new" section (most recent), a middle section and an
// "old" section. Reference counts are incremented only for touches outside
// the new section, factoring out bursts of correlated references; the
// victim is the least frequently used item of the old section, ties broken
// by recency.
type FBR struct {
	// FNew and FOld are the fractions of the list forming the new and old
	// sections. The defaults follow the original paper's recommendation.
	FNew, FOld float64

	list   recencyList
	counts map[ItemID]int64
}

// NewFBR returns an FBR policy with the canonical section sizes (30% new,
// 30% old).
func NewFBR() *FBR { return &FBR{FNew: 0.3, FOld: 0.3, counts: map[ItemID]int64{}} }

// Name implements Policy.
func (*FBR) Name() string { return "fbr" }

// Insert implements Policy.
func (p *FBR) Insert(id ItemID) {
	p.list.insertFront(id)
	p.counts[id] = 1
}

// Touch implements Policy.
func (p *FBR) Touch(id ItemID) {
	idx := p.list.indexOf(id)
	if idx < 0 {
		p.Insert(id)
		return
	}
	newBoundary := p.sectionNew()
	if idx >= newBoundary {
		// Outside the new section: a genuine re-reference.
		p.counts[id]++
	}
	p.list.moveToFront(id)
}

func (p *FBR) sectionNew() int {
	n := int(p.FNew * float64(len(p.list.order)))
	if n < 1 {
		n = 1
	}
	return n
}

func (p *FBR) sectionOldStart() int {
	n := len(p.list.order)
	old := int(p.FOld * float64(n))
	if old < 1 {
		old = 1
	}
	start := n - old
	if start < 0 {
		start = 0
	}
	return start
}

// Victim implements Policy: the least frequently used item within the old
// section, least recent on ties.
func (p *FBR) Victim() (ItemID, bool) {
	n := len(p.list.order)
	if n == 0 {
		return 0, false
	}
	start := p.sectionOldStart()
	best := ItemID(0)
	bestCount := int64(-1)
	for i := n - 1; i >= start; i-- {
		id := p.list.order[i]
		if c := p.counts[id]; bestCount == -1 || c < bestCount {
			best, bestCount = id, c
		}
	}
	return best, true
}

// Remove implements Policy.
func (p *FBR) Remove(id ItemID) {
	p.list.remove(id)
	delete(p.counts, id)
}

// Len implements Policy.
func (p *FBR) Len() int { return len(p.list.order) }

// NewPolicy builds a policy by name ("lru", "lfu", "fbr"); it panics on an
// unknown name, which indicates a configuration typo.
func NewPolicy(name string) Policy {
	switch name {
	case "lru":
		return NewLRU()
	case "lfu":
		return NewLFU()
	case "fbr":
		return NewFBR()
	}
	panic("dms: unknown replacement policy " + name)
}

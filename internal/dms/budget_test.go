package dms

import (
	"testing"

	"viracocha/internal/grid"
	"viracocha/internal/vclock"
)

// putOKHelper inserts an unpinned block and reports whether it landed.
func (c *Cache) putOKHelper(id ItemID, b *grid.Block) bool {
	_, ok := c.PutOK(id, b, false)
	return ok
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if !b.TryReserve(60) {
		t.Fatal("reservation within the limit refused")
	}
	if p := b.Pressure(); p != 0.6 {
		t.Fatalf("pressure = %v, want 0.6", p)
	}
	if b.TryReserve(50) {
		t.Fatal("over-limit reservation granted")
	}
	if !b.TryReserve(40) {
		t.Fatal("exact-fit reservation refused")
	}
	b.Release(60)
	st := b.Stats()
	if st.Limit != 100 || st.Used != 40 || st.Peak != 100 {
		t.Fatalf("stats = %+v", st)
	}
	// Over-release floors at zero instead of corrupting the accounting.
	b.Release(1000)
	if st := b.Stats(); st.Used != 0 || st.Peak != 100 {
		t.Fatalf("stats after over-release = %+v", st)
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Fatal("non-positive limits must yield the nil (unlimited) budget")
	}
	if !b.TryReserve(1 << 40) {
		t.Fatal("nil budget refused a reservation")
	}
	b.Release(5)
	b.NoteShed()
	if b.Pressure() != 0 {
		t.Fatal("nil budget under pressure")
	}
	if b.Stats() != (BudgetStats{}) {
		t.Fatal("nil budget has non-zero stats")
	}
}

// TestCacheEvictsOwnEntriesForBudget: a cache whose byte capacity is ample
// but whose shared budget is tight evicts its own LRU entries to fit a new
// insert; the budget's peak never exceeds the limit.
func TestCacheEvictsOwnEntriesForBudget(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	c := NewCache("t", 100*one, NewLRU())
	c.Budget = NewBudget(2 * one)
	for i := 0; i < 4; i++ {
		if !c.putOKHelper(ItemID(i+1), blockOfSize(t, tinyID(0, i))) {
			t.Fatalf("insert %d refused despite evictable entries", i)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2 (budget-bound)", c.Len())
	}
	st := c.Budget.Stats()
	if st.Peak > st.Limit || st.Used != 2*one {
		t.Fatalf("budget stats = %+v", st)
	}
	if cs := c.Stats(); cs.Evictions != 2 || cs.RejectedBudget != 0 {
		t.Fatalf("cache stats = %+v, want 2 budget evictions", cs)
	}
}

// TestCacheRejectsWhenNothingEvictable: when another cache holds the whole
// budget, an empty cache cannot evict its way to room — the insert is
// refused (the caller serves the block uncached) and counted.
func TestCacheRejectsWhenNothingEvictable(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	budget := NewBudget(2 * one)
	a := NewCache("a", 100*one, NewLRU())
	b := NewCache("b", 100*one, NewLRU())
	a.Budget, b.Budget = budget, budget
	a.putOKHelper(1, blockOfSize(t, tinyID(0, 0)))
	a.putOKHelper(2, blockOfSize(t, tinyID(0, 1)))
	if b.putOKHelper(3, blockOfSize(t, tinyID(0, 2))) {
		t.Fatal("insert granted with the budget exhausted elsewhere")
	}
	if _, ok := b.Get(3); ok {
		t.Fatal("refused insert still landed in the cache")
	}
	if st := budget.Stats(); st.Rejected != 1 || st.Peak > st.Limit {
		t.Fatalf("budget stats = %+v, want 1 rejection", st)
	}
	if cs := b.Stats(); cs.RejectedBudget != 1 {
		t.Fatalf("cache stats = %+v, want RejectedBudget=1", cs)
	}
	// Removing entry 1 returns its bytes: cache b can insert again.
	a.Remove(1)
	if !b.putOKHelper(3, blockOfSize(t, tinyID(0, 2))) {
		t.Fatal("insert refused after budget bytes were released")
	}
	if st := budget.Stats(); st.Used != 2*one {
		t.Fatalf("budget used = %d, want %d", st.Used, 2*one)
	}
}

func TestCacheClearReleasesBudget(t *testing.T) {
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	c := NewCache("t", 100*one, NewLRU())
	c.Budget = NewBudget(4 * one)
	c.putOKHelper(1, blockOfSize(t, tinyID(0, 0)))
	c.putOKHelper(2, blockOfSize(t, tinyID(0, 1)))
	c.Clear()
	if st := c.Budget.Stats(); st.Used != 0 {
		t.Fatalf("budget used = %d after Clear, want 0", st.Used)
	}
}

// TestProxyShedsPrefetchUnderPressure: once the budget passes the shed
// threshold, speculative prefetches are dropped before they issue a load,
// while demand loads still go through (evicting as needed).
func TestProxyShedsPrefetchUnderPressure(t *testing.T) {
	v := vclock.NewVirtual()
	one := blockOfSize(t, tinyID(0, 0)).SizeBytes()
	cfg := DefaultConfig()
	cfg.DecideCost = 0
	cfg.NameCost = 0
	cfg.MemBudget = 2 * one
	cfg.PrefetchShedAt = 0.5
	srv, dev := testServer(v, cfg)
	p := srv.NewProxy("w0", nil)
	v.Go(func() {
		if _, err := p.Get(tinyID(0, 0)); err != nil {
			t.Error(err)
		}
		if _, err := p.Get(tinyID(0, 1)); err != nil {
			t.Error(err)
		}
		// Budget now full (pressure 1.0 ≥ 0.5): speculation is shed...
		p.Prefetch(tinyID(0, 2))
		// ...but a demand load still goes through by evicting.
		if _, err := p.Get(tinyID(0, 3)); err != nil {
			t.Error(err)
		}
	})
	v.Wait()
	st := p.Stats()
	if st.PrefetchShed != 1 || st.PrefetchIssued != 0 {
		t.Fatalf("proxy stats = %+v, want the prefetch shed before issuing", st)
	}
	if dev.Stats().Loads != 3 {
		t.Fatalf("device loads = %d, want 3 (no speculative load)", dev.Stats().Loads)
	}
	bst := srv.Budget().Stats()
	if bst.Shed != 1 || bst.Peak > bst.Limit {
		t.Fatalf("budget stats = %+v", bst)
	}
}

// Package dms implements Viracocha's Data Management System (paper §4): a
// naming service for generic data items, per-node proxies with a two-tier
// cache (main memory over local disk), pluggable replacement policies (LRU,
// LFU, FBR), system prefetching, and a central data-manager server that
// coordinates proxies, answers loading-strategy queries and brokers peer
// transfers across work-group boundaries.
package dms

import (
	"fmt"
	"sort"
	"sync"

	"viracocha/internal/grid"
)

// ItemName fully names a data item: a source, a data type and format, and an
// optional parameter list. Distinct items may derive from the same source
// file (e.g. the same block at different resolution levels), which is why
// file names alone are inadequate (paper §4).
type ItemName struct {
	Source string // e.g. "engine/t003/b007"
	Type   string // e.g. "block"
	Format string // e.g. "vrb"
	Params string // e.g. "level=2", "" for the full-resolution item
}

// String renders the canonical form used in logs.
func (n ItemName) String() string {
	s := n.Source + ":" + n.Type + ":" + n.Format
	if n.Params != "" {
		s += "?" + n.Params
	}
	return s
}

// BlockItem is the ItemName of a full-resolution grid block.
func BlockItem(id grid.BlockID) ItemName {
	return ItemName{Source: id.String(), Type: "block", Format: "vrb"}
}

// CoarseBlockItem is the ItemName of a block subsampled to the given
// multi-resolution level.
func CoarseBlockItem(id grid.BlockID, level int) ItemName {
	n := BlockItem(id)
	if level > 0 {
		n.Params = fmt.Sprintf("level=%d", level)
	}
	return n
}

// IndexItem is the ItemName of the min/max brick acceleration index over one
// block's field (entity kind "index:<field>"). Derived entities share the
// parent block's source, so the name service keeps the relationship visible.
func IndexItem(id grid.BlockID, field string) ItemName {
	return ItemName{Source: id.String(), Type: "index:" + field, Format: "minmax"}
}

// GradIndexItem is the ItemName of the vortex-skip index: the min/max brick
// summary of the squared velocity-gradient magnitude, from which λ2 is
// bounded without being computed.
func GradIndexItem(id grid.BlockID) ItemName {
	return IndexItem(id, grid.GradMagField)
}

// Lambda2Item is the ItemName of a block's derived λ2 scalar field (entity
// kind "l2"; the time step is part of the source).
func Lambda2Item(id grid.BlockID) ItemName {
	return ItemName{Source: id.String(), Type: "l2", Format: "field"}
}

// BSPItem is the ItemName of the view-dependent BSP tree over one block's
// field (entity kind "bsp:<field>").
func BSPItem(id grid.BlockID, field string) ItemName {
	return ItemName{Source: id.String(), Type: "bsp:" + field, Format: "tree"}
}

// MemoItem is the ItemName of a memoized extraction result: the canonical
// request key is the source, because the result derives from the whole
// request, not from a single block.
func MemoItem(key string) ItemName {
	return ItemName{Source: key, Type: "memo", Format: "stream"}
}

// ItemID is the unambiguous identifier a NameServer assigns to an ItemName.
// Proxies cache and exchange items by ID.
type ItemID uint64

// NameServer issues globally unique ItemIDs; it lives at the data-manager
// server on the scheduler node.
type NameServer struct {
	mu    sync.Mutex
	ids   map[ItemName]ItemID
	names map[ItemID]ItemName
	next  ItemID
}

// NewNameServer returns an empty name server.
func NewNameServer() *NameServer {
	return &NameServer{ids: map[ItemName]ItemID{}, names: map[ItemID]ItemName{}}
}

// Resolve returns the ID for a name, assigning a fresh one on first use.
func (s *NameServer) Resolve(n ItemName) ItemID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[n]; ok {
		return id
	}
	s.next++
	s.ids[n] = s.next
	s.names[s.next] = n
	return s.next
}

// Lookup translates an ID back to its name.
func (s *NameServer) Lookup(id ItemID) (ItemName, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.names[id]
	return n, ok
}

// Count reports the number of registered names.
func (s *NameServer) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// IDsMatching returns the IDs of every registered name accepted by match,
// in ascending ID order. It powers invalidation sweeps: the name space is
// the only complete inventory of what may be cached anywhere.
func (s *NameServer) IDsMatching(match func(ItemName) bool) []ItemID {
	s.mu.Lock()
	var out []ItemID
	for n, id := range s.ids {
		if match(n) {
			out = append(out, id)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Resolver is the proxy-side name resolver: it translates names to IDs and
// back, caching mappings locally and consulting the central name server on
// misses (a charged round trip in the proxy, see Proxy.resolve).
type Resolver struct {
	server *NameServer

	mu    sync.Mutex
	ids   map[ItemName]ItemID
	names map[ItemID]ItemName
}

// NewResolver returns a resolver bound to the central name server.
func NewResolver(server *NameServer) *Resolver {
	return &Resolver{
		server: server,
		ids:    map[ItemName]ItemID{},
		names:  map[ItemID]ItemName{},
	}
}

// Resolve returns the ID for the name and whether the central server had to
// be consulted (remote=true), so the caller can charge communication.
func (r *Resolver) Resolve(n ItemName) (id ItemID, remote bool) {
	r.mu.Lock()
	if id, ok := r.ids[n]; ok {
		r.mu.Unlock()
		return id, false
	}
	r.mu.Unlock()
	id = r.server.Resolve(n)
	r.mu.Lock()
	r.ids[n] = id
	r.names[id] = n
	r.mu.Unlock()
	return id, true
}

// Lookup translates an ID to its name, consulting the server when unknown
// locally.
func (r *Resolver) Lookup(id ItemID) (ItemName, bool) {
	r.mu.Lock()
	if n, ok := r.names[id]; ok {
		r.mu.Unlock()
		return n, true
	}
	r.mu.Unlock()
	n, ok := r.server.Lookup(id)
	if ok {
		r.mu.Lock()
		r.names[id] = n
		r.ids[n] = id
		r.mu.Unlock()
	}
	return n, ok
}

package dms

import (
	"errors"
	"sync"
	"time"

	"viracocha/internal/grid"
	"viracocha/internal/loader"
	"viracocha/internal/prefetch"
	"viracocha/internal/vclock"
)

// ProxyStats counts proxy-level DMS activity.
type ProxyStats struct {
	DemandRequests  int64 // Get calls
	DemandLoads     int64 // Gets that had to load from a source
	PrefetchIssued  int64 // asynchronous prefetches started
	PrefetchDone    int64 // prefetches that completed successfully
	PrefetchErrors  int64
	PrefetchSkipped int64 // prefetches dropped because a peer is fetching
	WaitedInflight  int64 // demand requests that overlapped an in-flight load
	RemoteResolves  int64 // name resolutions that consulted the server
	PrefetchShed    int64 // prefetches shed because the memory budget was under pressure
	DemandUncached  int64 // demand loads whose block could not be cached (degraded path)
	DerivedHits     int64 // GetDerived calls answered from a cache (local or peer)
	DerivedMisses   int64 // GetDerived calls that found nothing — caller rebuilds
	DerivedPeerHits int64 // GetDerived calls answered by another proxy's cache
	DerivedPuts     int64 // derived entities offered to the cache
	DerivedUncached int64 // derived entities the memory budget refused to admit
}

// EntityPeers finds derived entities in other proxies' caches. Demand blocks
// travel through the loader's peer source (addressable by BlockID); derived
// entities are addressable only by ItemID, so they need their own
// cooperative-cache path. The data-manager server implements it.
type EntityPeers interface {
	FetchEntity(self *Proxy, item ItemID) (Entity, bool)
}

// Coordinator is the central fetch registry at the data-manager server:
// proxies announce what they are loading so the fleet does not pull the same
// block over the interconnect several times. Prefetches yield to an ongoing
// fetch anywhere (the block will be a cheap peer transfer afterwards);
// demand fetches always proceed.
type Coordinator interface {
	TryBeginFetch(item ItemID, node string) bool
	EndFetch(item ItemID, node string)
}

// Proxy is the per-node data proxy (paper §4.1): a black box answering data
// requests out of its two-tier cache, loading through the adaptive strategy
// selector on misses, and running the system prefetcher on the observed
// request stream. Proxies are not bound to work groups, so peer transfers
// cross group boundaries.
type Proxy struct {
	Node     string
	Clock    vclock.Clock
	Cache    *Tiered
	Resolver *Resolver
	Loader   *loader.Selector
	// Prefetcher is the system prefetch policy; prefetch.None{} disables
	// system prefetching.
	Prefetcher prefetch.Prefetcher
	// NameCost is the communication cost of a remote name resolution.
	NameCost time.Duration
	// Coordinator, when set, deduplicates fetches across proxies.
	Coordinator Coordinator
	// StatsUnit records the demand request stream (§4.2).
	StatsUnit *StatsUnit
	// Budget is the server-wide memory budget (nil = unlimited); the
	// prefetcher consults it to shed speculation before demand loads feel
	// the pressure.
	Budget *Budget
	// PrefetchShedAt is the budget pressure (fraction in use) above which
	// speculative prefetches are shed; <= 0 means the 0.9 default.
	PrefetchShedAt float64
	// Peers, when set, lets GetDerived pull derived entities out of other
	// proxies' caches (a charged peer transfer).
	Peers EntityPeers
	// OnPrefetched, when set, runs in the prefetch goroutine after a
	// speculatively loaded block lands in the cache. The core layer uses it
	// to build acceleration indexes alongside prefetched blocks, so the
	// first demand query after a prefetch finds both the block and its
	// index hot.
	OnPrefetched func(b *grid.Block)
	// OnDemand, when set, runs after every successful demand Get (cache hit
	// or load). The data-manager server uses it to maintain the group-wide
	// demand hot-set that re-warms rejoined nodes' caches.
	OnDemand func(id grid.BlockID)

	mu       sync.Mutex
	inflight map[ItemID]*vclock.Gate
	stats    ProxyStats
}

// NewProxy wires a proxy from its parts. Prefetcher may be nil (no system
// prefetching).
func NewProxy(node string, c vclock.Clock, cache *Tiered, res *Resolver, sel *loader.Selector, pf prefetch.Prefetcher) *Proxy {
	if pf == nil {
		pf = prefetch.None{}
	}
	return &Proxy{
		Node:       node,
		Clock:      c,
		Cache:      cache,
		Resolver:   res,
		Loader:     sel,
		Prefetcher: pf,
		StatsUnit:  NewStatsUnit(0),
		inflight:   map[ItemID]*vclock.Gate{},
	}
}

// resolve translates a name, charging the round trip when the central name
// server had to be consulted.
func (p *Proxy) resolve(n ItemName) ItemID {
	id, remote := p.Resolver.Resolve(n)
	if remote {
		p.mu.Lock()
		p.stats.RemoteResolves++
		p.mu.Unlock()
		p.Clock.Sleep(p.NameCost)
	}
	return id
}

// Get returns the block, from cache when possible, loading it otherwise. It
// records the demand request with the prefetcher and triggers system
// prefetches for the suggested successors.
func (p *Proxy) Get(id grid.BlockID) (*grid.Block, error) {
	item := p.resolve(BlockItem(id))
	p.mu.Lock()
	p.stats.DemandRequests++
	p.mu.Unlock()
	for {
		if e, ok := p.Cache.Get(item); ok {
			b := e.(*grid.Block) // a BlockItem name always caches a block
			p.StatsUnit.Record(id, false, p.Clock.Now())
			p.Prefetcher.Record(id, false)
			if p.OnDemand != nil {
				p.OnDemand(id)
			}
			p.systemPrefetch(id)
			return b, nil
		}
		// Someone (usually a prefetch) may already be loading this item:
		// wait for it rather than loading twice.
		p.mu.Lock()
		if g := p.inflight[item]; g != nil {
			p.stats.WaitedInflight++
			p.mu.Unlock()
			g.Wait()
			continue
		}
		g := vclock.NewGate(p.Clock)
		p.inflight[item] = g
		p.mu.Unlock()

		if p.Coordinator != nil {
			p.Coordinator.TryBeginFetch(item, p.Node) // demand always proceeds
		}
		b, _, err := p.Loader.Load(id)
		cached := false
		if err == nil {
			cached = p.Cache.Put(item, b, false)
		}
		p.mu.Lock()
		delete(p.inflight, item)
		if err == nil {
			p.stats.DemandLoads++
			if !cached {
				p.stats.DemandUncached++
			}
		}
		p.mu.Unlock()
		if p.Coordinator != nil {
			p.Coordinator.EndFetch(item, p.Node)
		}
		g.Open()
		if err != nil {
			return nil, err
		}
		p.StatsUnit.Record(id, true, p.Clock.Now())
		p.Prefetcher.Record(id, true)
		if p.OnDemand != nil {
			p.OnDemand(id)
		}
		p.systemPrefetch(id)
		return b, nil
	}
}

// systemPrefetch asks the policy for successors of id and starts
// asynchronous loads for the ones not already cached or in flight.
func (p *Proxy) systemPrefetch(id grid.BlockID) {
	for _, s := range p.Prefetcher.Suggest(id) {
		p.Prefetch(s)
	}
}

// Prefetch starts an asynchronous load of id into the cache (both the
// system prefetcher and command code prefetches use it). It returns
// immediately; a later Get overlaps with or waits on the load.
func (p *Proxy) Prefetch(id grid.BlockID) {
	// Load shedding: under memory pressure, speculation is the first thing
	// to go — the budget's headroom is kept for demand loads.
	if p.Budget != nil {
		shedAt := p.PrefetchShedAt
		if shedAt <= 0 {
			shedAt = 0.9
		}
		if p.Budget.Pressure() >= shedAt {
			p.mu.Lock()
			p.stats.PrefetchShed++
			p.mu.Unlock()
			p.Budget.NoteShed()
			return
		}
	}
	item := p.resolve(BlockItem(id))
	if _, ok := p.Cache.Peek(item); ok {
		return
	}
	p.mu.Lock()
	if p.inflight[item] != nil {
		p.mu.Unlock()
		return
	}
	if p.Coordinator != nil && !p.Coordinator.TryBeginFetch(item, p.Node) {
		p.stats.PrefetchSkipped++
		p.mu.Unlock()
		return
	}
	g := vclock.NewGate(p.Clock)
	p.inflight[item] = g
	p.stats.PrefetchIssued++
	p.mu.Unlock()
	p.Clock.Go(func() {
		b, _, err := p.Loader.LoadBackground(id)
		if err == nil {
			if p.Cache.Put(item, b, true) && p.OnPrefetched != nil {
				p.OnPrefetched(b)
			}
		}
		p.mu.Lock()
		delete(p.inflight, item)
		switch {
		case err == nil:
			p.stats.PrefetchDone++
		case errors.Is(err, loader.ErrBusy):
			p.stats.PrefetchSkipped++
		default:
			p.stats.PrefetchErrors++
		}
		p.mu.Unlock()
		if p.Coordinator != nil {
			p.Coordinator.EndFetch(item, p.Node)
		}
		g.Open()
	})
}

// GetCoarse returns the block subsampled to the given multi-resolution
// level, caching each level as its own data item (same source, different
// parameter list — the reason the naming service exists).
func (p *Proxy) GetCoarse(id grid.BlockID, level int) (*grid.Block, error) {
	if level <= 0 {
		return p.Get(id)
	}
	item := p.resolve(CoarseBlockItem(id, level))
	if e, ok := p.Cache.Get(item); ok {
		return e.(*grid.Block), nil
	}
	full, err := p.Get(id)
	if err != nil {
		return nil, err
	}
	c := full.Coarsen(level)
	p.Cache.Put(item, c, false)
	return c, nil
}

// GetDerived returns a cached derived entity (acceleration index, λ2 field,
// BSP tree) by name: local tiers first, then other proxies' caches — derived
// data is peer-transferable like any entity, and an index is far cheaper to
// ship than the block it summarizes. A miss means no proxy holds it; the
// caller rebuilds and offers the result back through PutDerived.
func (p *Proxy) GetDerived(n ItemName) (Entity, bool) {
	item := p.resolve(n)
	if e, ok := p.Cache.Get(item); ok {
		p.mu.Lock()
		p.stats.DerivedHits++
		p.mu.Unlock()
		return e, true
	}
	if p.Peers != nil {
		if e, ok := p.Peers.FetchEntity(p, item); ok {
			p.Cache.Put(item, e, false)
			p.mu.Lock()
			p.stats.DerivedHits++
			p.stats.DerivedPeerHits++
			p.mu.Unlock()
			return e, true
		}
	}
	p.mu.Lock()
	p.stats.DerivedMisses++
	p.mu.Unlock()
	return nil, false
}

// HasDerived reports whether the derived entity is resident in the local
// tiers, with no policy, statistics or peer side effects (prefetch-path
// existence checks).
func (p *Proxy) HasDerived(n ItemName) bool {
	id, _ := p.Resolver.Resolve(n)
	_, ok := p.Cache.Peek(id)
	return ok
}

// PutDerived offers a freshly built derived entity to the cache, reporting
// whether it was admitted. False means the memory budget refused it: the
// caller keeps using the entity for this request and the next request
// rebuilds — degraded, never over budget.
func (p *Proxy) PutDerived(n ItemName, e Entity) bool {
	ok := p.Cache.Put(p.resolve(n), e, false)
	p.mu.Lock()
	p.stats.DerivedPuts++
	if !ok {
		p.stats.DerivedUncached++
	}
	p.mu.Unlock()
	return ok
}

// Stats returns a copy of the proxy statistics.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// UncachedLoads reports how many demand loads could not be cached (budget
// refusals): the degraded path. The core layer samples it around each Load
// to attribute degradation to requests.
func (p *Proxy) UncachedLoads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats.DemandUncached
}

// DropCaches empties both cache tiers (cold-start experiments).
func (p *Proxy) DropCaches() { p.Cache.Clear() }

package dms

import (
	"errors"
	"sync"
	"time"

	"viracocha/internal/grid"
	"viracocha/internal/loader"
	"viracocha/internal/prefetch"
	"viracocha/internal/vclock"
)

// ProxyStats counts proxy-level DMS activity.
type ProxyStats struct {
	DemandRequests  int64 // Get calls
	DemandLoads     int64 // Gets that had to load from a source
	PrefetchIssued  int64 // asynchronous prefetches started
	PrefetchDone    int64 // prefetches that completed successfully
	PrefetchErrors  int64
	PrefetchSkipped int64 // prefetches dropped because a peer is fetching
	WaitedInflight  int64 // demand requests that overlapped an in-flight load
	RemoteResolves  int64 // name resolutions that consulted the server
	PrefetchShed    int64 // prefetches shed because the memory budget was under pressure
	DemandUncached  int64 // demand loads whose block could not be cached (degraded path)
}

// Coordinator is the central fetch registry at the data-manager server:
// proxies announce what they are loading so the fleet does not pull the same
// block over the interconnect several times. Prefetches yield to an ongoing
// fetch anywhere (the block will be a cheap peer transfer afterwards);
// demand fetches always proceed.
type Coordinator interface {
	TryBeginFetch(item ItemID, node string) bool
	EndFetch(item ItemID, node string)
}

// Proxy is the per-node data proxy (paper §4.1): a black box answering data
// requests out of its two-tier cache, loading through the adaptive strategy
// selector on misses, and running the system prefetcher on the observed
// request stream. Proxies are not bound to work groups, so peer transfers
// cross group boundaries.
type Proxy struct {
	Node     string
	Clock    vclock.Clock
	Cache    *Tiered
	Resolver *Resolver
	Loader   *loader.Selector
	// Prefetcher is the system prefetch policy; prefetch.None{} disables
	// system prefetching.
	Prefetcher prefetch.Prefetcher
	// NameCost is the communication cost of a remote name resolution.
	NameCost time.Duration
	// Coordinator, when set, deduplicates fetches across proxies.
	Coordinator Coordinator
	// StatsUnit records the demand request stream (§4.2).
	StatsUnit *StatsUnit
	// Budget is the server-wide memory budget (nil = unlimited); the
	// prefetcher consults it to shed speculation before demand loads feel
	// the pressure.
	Budget *Budget
	// PrefetchShedAt is the budget pressure (fraction in use) above which
	// speculative prefetches are shed; <= 0 means the 0.9 default.
	PrefetchShedAt float64

	mu       sync.Mutex
	inflight map[ItemID]*vclock.Gate
	stats    ProxyStats
}

// NewProxy wires a proxy from its parts. Prefetcher may be nil (no system
// prefetching).
func NewProxy(node string, c vclock.Clock, cache *Tiered, res *Resolver, sel *loader.Selector, pf prefetch.Prefetcher) *Proxy {
	if pf == nil {
		pf = prefetch.None{}
	}
	return &Proxy{
		Node:       node,
		Clock:      c,
		Cache:      cache,
		Resolver:   res,
		Loader:     sel,
		Prefetcher: pf,
		StatsUnit:  NewStatsUnit(0),
		inflight:   map[ItemID]*vclock.Gate{},
	}
}

// resolve translates a name, charging the round trip when the central name
// server had to be consulted.
func (p *Proxy) resolve(n ItemName) ItemID {
	id, remote := p.Resolver.Resolve(n)
	if remote {
		p.mu.Lock()
		p.stats.RemoteResolves++
		p.mu.Unlock()
		p.Clock.Sleep(p.NameCost)
	}
	return id
}

// Get returns the block, from cache when possible, loading it otherwise. It
// records the demand request with the prefetcher and triggers system
// prefetches for the suggested successors.
func (p *Proxy) Get(id grid.BlockID) (*grid.Block, error) {
	item := p.resolve(BlockItem(id))
	p.mu.Lock()
	p.stats.DemandRequests++
	p.mu.Unlock()
	for {
		if b, ok := p.Cache.Get(item); ok {
			p.StatsUnit.Record(id, false, p.Clock.Now())
			p.Prefetcher.Record(id, false)
			p.systemPrefetch(id)
			return b, nil
		}
		// Someone (usually a prefetch) may already be loading this item:
		// wait for it rather than loading twice.
		p.mu.Lock()
		if g := p.inflight[item]; g != nil {
			p.stats.WaitedInflight++
			p.mu.Unlock()
			g.Wait()
			continue
		}
		g := vclock.NewGate(p.Clock)
		p.inflight[item] = g
		p.mu.Unlock()

		if p.Coordinator != nil {
			p.Coordinator.TryBeginFetch(item, p.Node) // demand always proceeds
		}
		b, _, err := p.Loader.Load(id)
		cached := false
		if err == nil {
			cached = p.Cache.Put(item, b, false)
		}
		p.mu.Lock()
		delete(p.inflight, item)
		if err == nil {
			p.stats.DemandLoads++
			if !cached {
				p.stats.DemandUncached++
			}
		}
		p.mu.Unlock()
		if p.Coordinator != nil {
			p.Coordinator.EndFetch(item, p.Node)
		}
		g.Open()
		if err != nil {
			return nil, err
		}
		p.StatsUnit.Record(id, true, p.Clock.Now())
		p.Prefetcher.Record(id, true)
		p.systemPrefetch(id)
		return b, nil
	}
}

// systemPrefetch asks the policy for successors of id and starts
// asynchronous loads for the ones not already cached or in flight.
func (p *Proxy) systemPrefetch(id grid.BlockID) {
	for _, s := range p.Prefetcher.Suggest(id) {
		p.Prefetch(s)
	}
}

// Prefetch starts an asynchronous load of id into the cache (both the
// system prefetcher and command code prefetches use it). It returns
// immediately; a later Get overlaps with or waits on the load.
func (p *Proxy) Prefetch(id grid.BlockID) {
	// Load shedding: under memory pressure, speculation is the first thing
	// to go — the budget's headroom is kept for demand loads.
	if p.Budget != nil {
		shedAt := p.PrefetchShedAt
		if shedAt <= 0 {
			shedAt = 0.9
		}
		if p.Budget.Pressure() >= shedAt {
			p.mu.Lock()
			p.stats.PrefetchShed++
			p.mu.Unlock()
			p.Budget.NoteShed()
			return
		}
	}
	item := p.resolve(BlockItem(id))
	if _, ok := p.Cache.Peek(item); ok {
		return
	}
	p.mu.Lock()
	if p.inflight[item] != nil {
		p.mu.Unlock()
		return
	}
	if p.Coordinator != nil && !p.Coordinator.TryBeginFetch(item, p.Node) {
		p.stats.PrefetchSkipped++
		p.mu.Unlock()
		return
	}
	g := vclock.NewGate(p.Clock)
	p.inflight[item] = g
	p.stats.PrefetchIssued++
	p.mu.Unlock()
	p.Clock.Go(func() {
		b, _, err := p.Loader.LoadBackground(id)
		if err == nil {
			p.Cache.Put(item, b, true)
		}
		p.mu.Lock()
		delete(p.inflight, item)
		switch {
		case err == nil:
			p.stats.PrefetchDone++
		case errors.Is(err, loader.ErrBusy):
			p.stats.PrefetchSkipped++
		default:
			p.stats.PrefetchErrors++
		}
		p.mu.Unlock()
		if p.Coordinator != nil {
			p.Coordinator.EndFetch(item, p.Node)
		}
		g.Open()
	})
}

// GetCoarse returns the block subsampled to the given multi-resolution
// level, caching each level as its own data item (same source, different
// parameter list — the reason the naming service exists).
func (p *Proxy) GetCoarse(id grid.BlockID, level int) (*grid.Block, error) {
	if level <= 0 {
		return p.Get(id)
	}
	item := p.resolve(CoarseBlockItem(id, level))
	if b, ok := p.Cache.Get(item); ok {
		return b, nil
	}
	full, err := p.Get(id)
	if err != nil {
		return nil, err
	}
	c := full.Coarsen(level)
	p.Cache.Put(item, c, false)
	return c, nil
}

// Stats returns a copy of the proxy statistics.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// UncachedLoads reports how many demand loads could not be cached (budget
// refusals): the degraded path. The core layer samples it around each Load
// to attribute degradation to requests.
func (p *Proxy) UncachedLoads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats.DemandUncached
}

// DropCaches empties both cache tiers (cold-start experiments).
func (p *Proxy) DropCaches() { p.Cache.Clear() }

package dms

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"viracocha/internal/grid"
	"viracocha/internal/loader"
	"viracocha/internal/prefetch"
	"viracocha/internal/vclock"
)

// Config parameterizes the DMS for one runtime.
type Config struct {
	// L1Bytes and L2Bytes are the per-proxy primary and secondary cache
	// capacities; L2Bytes 0 disables the secondary cache.
	L1Bytes int64
	L2Bytes int64
	// PolicyName selects the replacement policy: "lru", "lfu" or "fbr".
	PolicyName string
	// DecideCost is the round trip for asking the server which loading
	// strategy to use (charged per load).
	DecideCost time.Duration
	// NameCost is the round trip for a remote name resolution.
	NameCost time.Duration
	// PeerLatency and PeerBandwidth model the interconnect used for peer
	// transfers between proxies.
	PeerLatency   time.Duration
	PeerBandwidth float64
	// LocalDiskBandwidth models the node-local disk that backs the
	// secondary cache tier (spill/promote cost).
	LocalDiskBandwidth float64
	// DisablePeer turns the cooperative peer-transfer source off (used by
	// the loading-strategy ablation).
	DisablePeer bool
	// MemBudget caps the total resident bytes across both cache tiers of
	// every proxy (0 = unlimited). Under pressure caches evict; when nothing
	// is left to evict blocks are served uncached rather than over budget.
	MemBudget int64
	// PrefetchShedAt is the MemBudget pressure above which proxies shed
	// speculative prefetches; <= 0 means 0.9.
	PrefetchShedAt float64
}

// DefaultConfig returns the configuration used by the experiments: 256 MB
// primary cache, 1 GB secondary cache with FBR replacement, and
// interconnect parameters resembling the paper's SMP node.
func DefaultConfig() Config {
	return Config{
		L1Bytes:            256 << 20,
		L2Bytes:            1 << 30,
		PolicyName:         "fbr",
		DecideCost:         200 * time.Microsecond,
		NameCost:           200 * time.Microsecond,
		PeerLatency:        100 * time.Microsecond,
		PeerBandwidth:      400e6,
		LocalDiskBandwidth: 80e6,
		PrefetchShedAt:     0.9,
	}
}

// Server is the centralized data-manager server residing at the scheduler
// node: it runs the name server, registers every proxy, constructs their
// adaptive loaders (including the peer-transfer source), and aggregates
// statistics.
type Server struct {
	Clock  vclock.Clock
	Names  *NameServer
	Config Config

	mu       sync.Mutex
	sources  []loader.Source
	proxies  []*Proxy
	fetching map[ItemID]map[string]bool
	budget   *Budget
	hot      []grid.BlockID // demand hot-set, most recent first, ≤ hotCap
	// invalidate is notified after a source step's items are dropped, so
	// dependents outside the DMS (the scheduler's result memo) can follow.
	invalidate []func(dataset string, step int)
}

// hotCap bounds the server's demand hot-set: the most recently demanded
// blocks across all proxies, kept small enough that re-warming a rejoined
// node's cache stays a short background errand rather than a bulk reload.
const hotCap = 32

// NewServer builds a data-manager server with the given base sources
// (devices such as the local disk and the network file server).
func NewServer(c vclock.Clock, cfg Config, sources ...loader.Source) *Server {
	return &Server{Clock: c, Names: NewNameServer(), Config: cfg, sources: sources,
		fetching: map[ItemID]map[string]bool{}, budget: NewBudget(cfg.MemBudget)}
}

// Budget returns the server-wide memory budget (nil = unlimited).
func (s *Server) Budget() *Budget { return s.budget }

// OnInvalidate registers a listener called after InvalidateStep drops a
// source step's items: derived results computed from those items (the
// scheduler's memoized extractions) must be invalidated too.
func (s *Server) OnInvalidate(fn func(dataset string, step int)) {
	s.mu.Lock()
	s.invalidate = append(s.invalidate, fn)
	s.mu.Unlock()
}

// InvalidateStep drops every cached item derived from (dataset, step) —
// demand blocks, coarse levels, indexes, λ2 fields, BSP trees — from every
// proxy's cache tiers, then notifies the invalidation listeners. step < 0
// drops every step of the data set. This is the coherence hook for source
// data changing underneath the caches: a dropped or rewritten step (future
// in-situ ingestion re-registering a step) must never be served stale.
// Returns the number of distinct item names swept.
func (s *Server) InvalidateStep(dataset string, step int) int {
	ids := s.Names.IDsMatching(func(n ItemName) bool {
		return sourceMatchesStep(n.Source, dataset, step)
	})
	if len(ids) > 0 {
		for _, p := range s.Proxies() {
			for _, id := range ids {
				p.Cache.Remove(id)
			}
		}
	}
	s.mu.Lock()
	listeners := make([]func(string, int), len(s.invalidate))
	copy(listeners, s.invalidate)
	s.mu.Unlock()
	for _, fn := range listeners {
		fn(dataset, step)
	}
	return len(ids)
}

// sourceMatchesStep reports whether an item source of the canonical
// "<dataset>/tNNN[/...]" form belongs to (dataset, step); step < 0 matches
// every step. Memo items (whose source is a request key, not a block path)
// never match: they are invalidated through the listener instead.
func sourceMatchesStep(src, dataset string, step int) bool {
	rest, ok := strings.CutPrefix(src, dataset+"/t")
	if !ok {
		return false
	}
	if step < 0 {
		return true
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.Atoi(rest)
	return err == nil && v == step
}

// AddSource registers an additional base source for proxies created later.
func (s *Server) AddSource(src loader.Source) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// NewProxy creates, registers and returns the data proxy for a node. Each
// proxy gets its own two-tier cache and an adaptive selector over the base
// sources plus a peer source covering all *other* proxies' caches.
func (s *Server) NewProxy(node string, pf prefetch.Prefetcher) *Proxy {
	cfg := s.Config
	l1 := NewCache(node+"/L1", cfg.L1Bytes, NewPolicy(cfg.PolicyName))
	l1.Budget = s.budget
	var l2 *Cache
	if cfg.L2Bytes > 0 {
		l2 = NewCache(node+"/L2", cfg.L2Bytes, NewPolicy(cfg.PolicyName))
		l2.Budget = s.budget
	}
	tiered := &Tiered{Clock: s.Clock, L1: l1, L2: l2}
	if cfg.LocalDiskBandwidth > 0 {
		cost := func(bytes int64) time.Duration {
			return time.Duration(float64(bytes) / cfg.LocalDiskBandwidth * float64(time.Second))
		}
		tiered.SpillCost = cost
		tiered.PromoteCost = cost
	}

	s.mu.Lock()
	base := append([]loader.Source(nil), s.sources...)
	s.mu.Unlock()

	sel := loader.NewSelector(s.Clock, cfg.DecideCost, base...)
	p := NewProxy(node, s.Clock, tiered, NewResolver(s.Names), sel, pf)
	p.NameCost = cfg.NameCost
	p.Coordinator = s
	p.Budget = s.budget
	p.PrefetchShedAt = cfg.PrefetchShedAt
	if !cfg.DisablePeer {
		sel.AddSource(s.peerSource(p))
		p.Peers = s
	}

	p.OnDemand = s.NoteDemand

	s.mu.Lock()
	s.proxies = append(s.proxies, p)
	s.mu.Unlock()
	return p
}

// NoteDemand records a demand-block access in the server's bounded recency
// hot-set. Every proxy reports its demand stream here (wired in NewProxy), so
// the set reflects what the whole group is actively touching — the working
// set a freshly rejoined node should pull back into its cold cache.
func (s *Server) NoteDemand(id grid.BlockID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, h := range s.hot {
		if h == id {
			copy(s.hot[1:i+1], s.hot[:i])
			s.hot[0] = id
			return
		}
	}
	if len(s.hot) < hotCap {
		s.hot = append(s.hot, grid.BlockID{})
	}
	copy(s.hot[1:], s.hot)
	s.hot[0] = id
}

// HotSet returns a snapshot of the demand hot-set, most recent first. The
// core layer prefetches it through a rejoined node's new proxy to re-warm the
// cache off the request path.
func (s *Server) HotSet() []grid.BlockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]grid.BlockID(nil), s.hot...)
}

// DropProxy unregisters every proxy of a node that left the group (crash or
// decommission): the dead incarnation's cached bytes are credited back to the
// shared memory budget (Cache.Clear releases them), the proxy stops serving
// as a peer-transfer source, and any fetch registrations the node still held
// are cleared so survivors' prefetches are not deferred forever to a fetch
// that will never finish.
func (s *Server) DropProxy(node string) {
	s.mu.Lock()
	kept := s.proxies[:0]
	var dropped []*Proxy
	for _, p := range s.proxies {
		if p.Node == node {
			dropped = append(dropped, p)
		} else {
			kept = append(kept, p)
		}
	}
	s.proxies = kept
	for item, m := range s.fetching {
		delete(m, node)
		if len(m) == 0 {
			delete(s.fetching, item)
		}
	}
	s.mu.Unlock()
	for _, p := range dropped {
		p.DropCaches()
	}
}

// peerSource builds the cooperative-cache source for proxy self: blocks
// available from any other proxy's cache, transferred over the modeled
// interconnect. The cooperative cache is greedy — no duplicate deletion,
// every proxy manages its cache independently (paper §4.3).
func (s *Server) peerSource(self *Proxy) loader.Source {
	find := func(id grid.BlockID) (*grid.Block, bool) {
		item := s.Names.Resolve(BlockItem(id))
		s.mu.Lock()
		peers := append([]*Proxy(nil), s.proxies...)
		s.mu.Unlock()
		for _, q := range peers {
			if q == self {
				continue
			}
			if e, ok := q.Cache.Peek(item); ok {
				if b, ok := e.(*grid.Block); ok {
					return b, true
				}
			}
		}
		return nil, false
	}
	return &loader.FuncSource{
		SourceName: "peer:" + self.Node,
		AvailFn: func(id grid.BlockID) bool {
			_, ok := find(id)
			return ok
		},
		CostFn: func(id grid.BlockID) time.Duration {
			b, ok := find(id)
			if !ok {
				return time.Hour
			}
			return s.peerCost(b.SizeBytes())
		},
		LoadFn: func(id grid.BlockID) (*grid.Block, int64, error) {
			b, ok := find(id)
			if !ok {
				return nil, 0, &PeerMissError{ID: id}
			}
			size := b.SizeBytes()
			s.Clock.Sleep(s.peerCost(size))
			return b, size, nil
		},
	}
}

// FetchEntity implements EntityPeers: it finds a derived entity in some
// other proxy's cache and charges the interconnect transfer for its size.
// Like the block peer source, the cooperative cache is greedy — no duplicate
// deletion (paper §4.3).
func (s *Server) FetchEntity(self *Proxy, item ItemID) (Entity, bool) {
	s.mu.Lock()
	peers := append([]*Proxy(nil), s.proxies...)
	s.mu.Unlock()
	for _, q := range peers {
		if q == self {
			continue
		}
		if e, ok := q.Cache.Peek(item); ok {
			s.Clock.Sleep(s.peerCost(e.SizeBytes()))
			return e, true
		}
	}
	return nil, false
}

func (s *Server) peerCost(bytes int64) time.Duration {
	d := s.Config.PeerLatency
	if s.Config.PeerBandwidth > 0 {
		d += time.Duration(float64(bytes) / s.Config.PeerBandwidth * float64(time.Second))
	}
	return d
}

// PeerMissError reports that a block vanished from all peer caches between
// the availability check and the transfer (eviction race); the selector
// falls back to the next source.
type PeerMissError struct{ ID grid.BlockID }

// Error implements error.
func (e *PeerMissError) Error() string {
	return "dms: " + e.ID.String() + " no longer in any peer cache"
}

// TryBeginFetch implements Coordinator: it registers node as fetching the
// item and reports false when some other node is already fetching it.
func (s *Server) TryBeginFetch(item ItemID, node string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.fetching[item]
	for other := range m {
		if other != node {
			return false
		}
	}
	if m == nil {
		m = map[string]bool{}
		s.fetching[item] = m
	}
	m[node] = true
	return true
}

// EndFetch implements Coordinator.
func (s *Server) EndFetch(item ItemID, node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.fetching[item]; ok {
		delete(m, node)
		if len(m) == 0 {
			delete(s.fetching, item)
		}
	}
}

// Proxies returns a snapshot of the registered proxies.
func (s *Server) Proxies() []*Proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Proxy(nil), s.proxies...)
}

// DropAllCaches clears every proxy's caches for cold-start experiments.
func (s *Server) DropAllCaches() {
	for _, p := range s.Proxies() {
		p.DropCaches()
	}
}

// AggregateStats sums cache and proxy statistics over all proxies.
func (s *Server) AggregateStats() (CacheStats, ProxyStats) {
	var cs CacheStats
	var ps ProxyStats
	for _, p := range s.Proxies() {
		l1 := p.Cache.L1.Stats()
		cs.Hits += l1.Hits
		cs.Misses += l1.Misses
		cs.Puts += l1.Puts
		cs.Evictions += l1.Evictions
		cs.BytesEvicted += l1.BytesEvicted
		cs.PrefetchPuts += l1.PrefetchPuts
		cs.PrefetchUsed += l1.PrefetchUsed
		cs.RejectedLarge += l1.RejectedLarge
		cs.RejectedBudget += l1.RejectedBudget
		cs.DerivedEvictions += l1.DerivedEvictions
		if l2 := p.Cache.L2; l2 != nil {
			cs.RejectedBudget += l2.Stats().RejectedBudget
		}
		st := p.Stats()
		ps.DemandRequests += st.DemandRequests
		ps.DemandLoads += st.DemandLoads
		ps.PrefetchIssued += st.PrefetchIssued
		ps.PrefetchDone += st.PrefetchDone
		ps.PrefetchErrors += st.PrefetchErrors
		ps.PrefetchSkipped += st.PrefetchSkipped
		ps.WaitedInflight += st.WaitedInflight
		ps.RemoteResolves += st.RemoteResolves
		ps.PrefetchShed += st.PrefetchShed
		ps.DemandUncached += st.DemandUncached
		ps.DerivedHits += st.DerivedHits
		ps.DerivedMisses += st.DerivedMisses
		ps.DerivedPeerHits += st.DerivedPeerHits
		ps.DerivedPuts += st.DerivedPuts
		ps.DerivedUncached += st.DerivedUncached
	}
	return cs, ps
}

package dms

import (
	"sort"
	"sync"
	"time"

	"viracocha/internal/grid"
)

// StatsUnit is the DMS's statistical component (paper §4.2): it records the
// demand request stream of a proxy — which blocks, in which order, hits or
// misses — so that the system prefetcher and the operator can inspect the
// observed access behavior. The log is a bounded ring; aggregate counters
// never roll over.
type StatsUnit struct {
	mu      sync.Mutex
	log     []AccessRecord
	head    int
	size    int
	perItem map[grid.BlockID]*ItemStats
}

// AccessRecord is one demand request.
type AccessRecord struct {
	ID   grid.BlockID
	Miss bool
	At   time.Duration
}

// ItemStats aggregates accesses of one block.
type ItemStats struct {
	Requests int64
	Misses   int64
	LastAt   time.Duration
}

// DefaultLogSize bounds the request ring.
const DefaultLogSize = 4096

// NewStatsUnit returns a unit with a ring of the given size (≤0 uses the
// default).
func NewStatsUnit(size int) *StatsUnit {
	if size <= 0 {
		size = DefaultLogSize
	}
	return &StatsUnit{
		log:     make([]AccessRecord, size),
		perItem: map[grid.BlockID]*ItemStats{},
	}
}

// Record notes one demand request.
func (s *StatsUnit) Record(id grid.BlockID, miss bool, at time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log[s.head] = AccessRecord{ID: id, Miss: miss, At: at}
	s.head = (s.head + 1) % len(s.log)
	if s.size < len(s.log) {
		s.size++
	}
	it := s.perItem[id]
	if it == nil {
		it = &ItemStats{}
		s.perItem[id] = it
	}
	it.Requests++
	if miss {
		it.Misses++
	}
	it.LastAt = at
}

// Recent returns up to n most recent requests, oldest first.
func (s *StatsUnit) Recent(n int) []AccessRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.size {
		n = s.size
	}
	out := make([]AccessRecord, 0, n)
	start := (s.head - n + len(s.log)) % len(s.log)
	for i := 0; i < n; i++ {
		out = append(out, s.log[(start+i)%len(s.log)])
	}
	return out
}

// Item returns the aggregate record of one block (zero value when never
// requested).
func (s *StatsUnit) Item(id grid.BlockID) ItemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.perItem[id]; ok {
		return *it
	}
	return ItemStats{}
}

// Hottest returns the n most requested blocks, most requested first, ties
// broken by name for determinism. The DMS can use it to pin the user's
// region of interest; the bench harness uses it to characterize workloads.
func (s *StatsUnit) Hottest(n int) []grid.BlockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]grid.BlockID, 0, len(s.perItem))
	for id := range s.perItem {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := s.perItem[ids[a]].Requests, s.perItem[ids[b]].Requests
		if ra != rb {
			return ra > rb
		}
		return ids[a].String() < ids[b].String()
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// TotalRequests reports the all-time demand request count.
func (s *StatsUnit) TotalRequests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, it := range s.perItem {
		t += it.Requests
	}
	return t
}

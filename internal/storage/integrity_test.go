package storage

import (
	"errors"
	"testing"
	"time"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
	"viracocha/internal/vclock"
)

// TestBlockChecksumDetectsBitFlips: every single-byte mutation of an encoded
// block frame past the magic must surface as ErrCorrupt (CRC-32C trailer),
// not as silently wrong data.
func TestBlockChecksumDetectsBitFlips(t *testing.T) {
	good := EncodeBlock(testBlock())
	for _, off := range []int{4, len(good) / 2, len(good) - 1} {
		bad := append([]byte{}, good...)
		bad[off] ^= 0x40
		_, err := DecodeBlock(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	if _, err := DecodeBlock(good); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

// TestDeviceRereadsCorruptFetchOnce: one corrupted read recovers via a
// single re-read (counted, and charged the wasted latency); the block
// arrives intact.
func TestDeviceRereadsCorruptFetchOnce(t *testing.T) {
	v := vclock.NewVirtual()
	d := NewDevice("disk", &GenBackend{Desc: dataset.Tiny()}, v, time.Millisecond, 0, 1)
	fetches := 0
	d.CorruptFault = func(grid.BlockID) bool {
		fetches++
		return fetches == 1
	}
	v.Go(func() {
		b, _, err := d.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: 1})
		if err != nil {
			t.Errorf("recoverable corruption failed the load: %v", err)
			return
		}
		if b.ID.Block != 1 {
			t.Errorf("re-read returned the wrong block: %+v", b.ID)
		}
	})
	v.Wait()
	st := d.Stats()
	if st.CorruptReads != 1 || st.Rereads != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want CorruptReads=1 Rereads=1", st)
	}
	// The wasted transfer costs at least one extra latency charge.
	if v.Now() < 2*time.Millisecond {
		t.Errorf("elapsed %v, want ≥ 2ms (original + re-read latency)", v.Now())
	}
}

// TestDevicePersistentCorruptionFails: when the re-read is corrupt too, the
// load fails with ErrCorrupt instead of retrying forever.
func TestDevicePersistentCorruptionFails(t *testing.T) {
	v := vclock.NewVirtual()
	d := NewDevice("disk", &GenBackend{Desc: dataset.Tiny()}, v, time.Millisecond, 0, 1)
	d.CorruptFault = func(grid.BlockID) bool { return true }
	v.Go(func() {
		_, _, err := d.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: 1})
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	v.Wait()
	st := d.Stats()
	if st.CorruptReads != 2 || st.Rereads != 1 {
		t.Fatalf("stats = %+v, want CorruptReads=2 Rereads=1 (re-read once, then fail)", st)
	}
	if st.Errors == 0 {
		t.Error("failed load not counted as a device error")
	}
}

package storage

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"viracocha/internal/grid"
)

// CompressBlock encodes a block and DEFLATE-compresses it at the given
// level (flate.BestSpeed … flate.BestCompression). The paper evaluated
// compressing block transfers and rejected it — "long runtimes and low
// compression rates compared to transmission time" (§4.3); this codec
// exists so the trade-off can be measured rather than asserted (see the
// compression ablation).
func CompressBlock(b *grid.Block, level int) ([]byte, error) {
	raw := EncodeBlock(b)
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressBlock reverses CompressBlock.
func DecompressBlock(data []byte) (*grid.Block, error) {
	r := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("storage: inflate: %w", err)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return DecodeBlock(raw)
}

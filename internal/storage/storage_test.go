package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
	"viracocha/internal/vclock"
)

func testBlock() *grid.Block {
	return dataset.Tiny().Generate(0, 1)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := testBlock()
	data := EncodeBlock(b)
	got, err := DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != b.ID || got.NI != b.NI || got.NJ != b.NJ || got.NK != b.NK {
		t.Fatalf("header mismatch: %+v vs %+v", got.ID, b.ID)
	}
	if !bytes.Equal(EncodeBlock(got), data) {
		t.Fatal("round trip unstable")
	}
	if len(got.Scalars) != len(b.Scalars) {
		t.Fatalf("scalar count %d, want %d", len(got.Scalars), len(b.Scalars))
	}
	for name, f := range b.Scalars {
		g := got.Scalars[name]
		for i := range f {
			if f[i] != g[i] {
				t.Fatalf("scalar %s[%d] mismatch", name, i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	good := EncodeBlock(testBlock())
	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated": good[:len(good)/2],
		"trailing":  append(append([]byte{}, good...), 0, 0, 0, 0),
	}
	for name, d := range cases {
		if _, err := DecodeBlock(d); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestGenBackend(t *testing.T) {
	g := &GenBackend{Desc: dataset.Tiny()}
	b, size, err := g.Fetch(grid.BlockID{Dataset: "tiny", Step: 1, Block: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID.Block != 2 || size <= 0 {
		t.Fatalf("fetch = %+v size=%d", b.ID, size)
	}
	if _, _, err := g.Fetch(grid.BlockID{Dataset: "other", Step: 0, Block: 0}); err == nil {
		t.Fatal("wrong dataset should fail")
	}
	if _, _, err := g.Fetch(grid.BlockID{Dataset: "tiny", Step: 9, Block: 0}); err == nil {
		t.Fatal("out-of-range step should fail")
	}
}

func TestMemBackend(t *testing.T) {
	m := NewMemBackend()
	if _, _, err := m.Fetch(grid.BlockID{Dataset: "tiny", Step: 0, Block: 0}); err == nil {
		t.Fatal("empty store should miss")
	}
	b := testBlock()
	m.Put(b)
	got, size, err := m.Fetch(b.ID)
	if err != nil || got != b || size != b.SizeBytes() {
		t.Fatalf("fetch = %v,%d,%v", got, size, err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestDirBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := &DirBackend{Root: dir}
	b := testBlock()
	if err := d.Put(b); err != nil {
		t.Fatal(err)
	}
	got, size, err := d.Fetch(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != b.ID || size <= 0 {
		t.Fatalf("fetch = %+v size=%d", got.ID, size)
	}
	if _, _, err := d.Fetch(grid.BlockID{Dataset: "tiny", Step: 1, Block: 3}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestFailingBackend(t *testing.T) {
	inner := &GenBackend{Desc: dataset.Tiny()}
	sentinel := errors.New("nfs down")
	f := &FailingBackend{
		Inner: inner,
		Match: func(id grid.BlockID) bool { return id.Block == 1 },
		Err:   sentinel,
	}
	if _, _, err := f.Fetch(grid.BlockID{Dataset: "tiny", Step: 0, Block: 1}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, _, err := f.Fetch(grid.BlockID{Dataset: "tiny", Step: 0, Block: 0}); err != nil {
		t.Fatalf("unmatched id failed: %v", err)
	}
}

func TestDeviceChargesLatencyAndTransfer(t *testing.T) {
	v := vclock.NewVirtual()
	// 1 MB/s bandwidth, 10ms latency; charge exactly 1 MB per block.
	dev := NewDevice("disk", &GenBackend{Desc: dataset.Tiny()}, v, 10*time.Millisecond, 1e6, 1)
	dev.ChargeBytes = func(grid.BlockID) int64 { return 1e6 }
	v.Go(func() {
		_, n, err := dev.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: 0})
		if err != nil || n != 1e6 {
			t.Errorf("load = %d,%v", n, err)
		}
	})
	v.Wait()
	want := 10*time.Millisecond + time.Second
	if v.Now() != want {
		t.Fatalf("charged %v, want %v", v.Now(), want)
	}
	s := dev.Stats()
	if s.Loads != 1 || s.Bytes != 1e6 || s.BusyTime != want {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceSingleChannelSerializes(t *testing.T) {
	v := vclock.NewVirtual()
	dev := NewDevice("disk", &GenBackend{Desc: dataset.Tiny()}, v, 0, 1e6, 1)
	dev.ChargeBytes = func(grid.BlockID) int64 { return 1e6 } // 1s per load
	for w := 0; w < 3; w++ {
		blk := w
		v.Go(func() {
			if _, _, err := dev.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: blk}); err != nil {
				t.Error(err)
			}
		})
	}
	v.Wait()
	if v.Now() != 3*time.Second {
		t.Fatalf("3 loads on 1 channel took %v, want 3s", v.Now())
	}
}

func TestDeviceMultiChannelOverlaps(t *testing.T) {
	v := vclock.NewVirtual()
	dev := NewDevice("fs", &GenBackend{Desc: dataset.Tiny()}, v, 0, 1e6, 3)
	dev.ChargeBytes = func(grid.BlockID) int64 { return 1e6 }
	for w := 0; w < 3; w++ {
		blk := w
		v.Go(func() { dev.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: blk}) })
	}
	v.Wait()
	if v.Now() != time.Second {
		t.Fatalf("3 loads on 3 channels took %v, want 1s", v.Now())
	}
}

func TestDeviceErrorStillCostsLatency(t *testing.T) {
	v := vclock.NewVirtual()
	fb := &FailingBackend{
		Inner: &GenBackend{Desc: dataset.Tiny()},
		Match: func(grid.BlockID) bool { return true },
	}
	dev := NewDevice("flaky", fb, v, 50*time.Millisecond, 1e6, 1)
	v.Go(func() {
		if _, _, err := dev.Load(grid.BlockID{Dataset: "tiny", Step: 0, Block: 0}); err == nil {
			t.Error("expected failure")
		}
	})
	v.Wait()
	if v.Now() != 50*time.Millisecond {
		t.Fatalf("error charged %v, want 50ms", v.Now())
	}
	if dev.Stats().Errors != 1 {
		t.Fatalf("stats = %+v", dev.Stats())
	}
}

func TestDeviceEstimateCost(t *testing.T) {
	v := vclock.NewVirtual()
	dev := NewDevice("disk", NewMemBackend(), v, 5*time.Millisecond, 2e6, 1)
	if got := dev.EstimateCost(2e6); got != 5*time.Millisecond+time.Second {
		t.Fatalf("EstimateCost = %v", got)
	}
	// Infinite bandwidth: latency only.
	fast := NewDevice("ram", NewMemBackend(), v, time.Millisecond, 0, 1)
	if got := fast.EstimateCost(1 << 30); got != time.Millisecond {
		t.Fatalf("EstimateCost infinite-bw = %v", got)
	}
}

func TestDeviceRealClock(t *testing.T) {
	r := vclock.NewReal()
	dev := NewDevice("disk", &GenBackend{Desc: dataset.Tiny()}, r, 0, 0, 2)
	r.Go(func() {
		if _, _, err := dev.Load(grid.BlockID{Dataset: "tiny", Step: 1, Block: 3}); err != nil {
			t.Error(err)
		}
	})
	r.Wait()
	if dev.Stats().Loads != 1 {
		t.Fatal("load not recorded")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	b := dataset.Engine().Generate(3, 7)
	for _, level := range []int{1, 6, 9} {
		data, err := CompressBlock(b, level)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBlock(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(EncodeBlock(got), EncodeBlock(b)) {
			t.Fatalf("level %d: round trip mismatch", level)
		}
	}
}

func TestCompressionRatioOnCFDData(t *testing.T) {
	// Smooth float32 CFD fields carry near-random mantissa bits: DEFLATE
	// should achieve only a modest ratio — the paper's "low compression
	// rates" finding (§4.3).
	b := dataset.Propfan().WithScale(2).Generate(0, 50)
	raw := EncodeBlock(b)
	comp, err := CompressBlock(b, 6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(comp)) / float64(len(raw))
	if ratio < 0.3 {
		t.Fatalf("ratio %.2f suspiciously good: synthetic data too regular to support the paper's claim", ratio)
	}
	if ratio > 1.05 {
		t.Fatalf("ratio %.2f: compression expanded the data badly", ratio)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := DecompressBlock([]byte{0x00, 0x01, 0x02}); err == nil {
		t.Fatal("expected inflate error")
	}
}

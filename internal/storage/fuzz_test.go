package storage

import (
	"bytes"
	"testing"

	"viracocha/internal/dataset"
)

// FuzzDecodeBlock exercises the block decoder with mutated inputs: it must
// never panic, and any input it accepts must re-encode stably.
func FuzzDecodeBlock(f *testing.F) {
	f.Add(EncodeBlock(dataset.Tiny().Generate(0, 0)))
	f.Add([]byte{})
	f.Add([]byte{0x4b, 0x42, 0x52, 0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			return
		}
		round := EncodeBlock(b)
		if !bytes.Equal(round, data) {
			t.Fatalf("accepted input does not re-encode stably")
		}
	})
}

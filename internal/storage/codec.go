// Package storage provides the secondary-storage substrate: a binary on-disk
// block format, pluggable backends (real directories, in-memory stores, and
// on-demand synthetic generation), and Device, a clock-aware wrapper that
// charges seek latency and transfer time so that the DMS experiments see
// the I/O costs of the paper's NFS-plus-local-disk environment.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"viracocha/internal/grid"
)

const blockMagic = 0x5652424b // "VRBK"

// blockCRCTable is the CRC32-C (Castagnoli) polynomial table protecting the
// block format against bit rot and torn writes.
var blockCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a block whose trailing CRC32-C did not match its
// contents — the medium returned data, but not the data that was written.
// Devices re-read once on it before failing the load.
var ErrCorrupt = errors.New("storage: block checksum mismatch")

// EncodeBlock serializes a block to the little-endian Viracocha block
// format: magic, ID, dims, then coordinates, velocity and named scalars.
func EncodeBlock(b *grid.Block) []byte {
	names := make([]string, 0, len(b.Scalars))
	for n := range b.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)

	size := 4 + 4 + len(b.ID.Dataset) + 8 + 12 + 4 + 4
	for _, n := range names {
		size += 4 + len(n) + 4*b.NumNodes()
	}
	size += 4 * (len(b.Points) + len(b.Velocity))
	buf := make([]byte, 0, size)

	var s4 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(s4[:], v)
		buf = append(buf, s4[:]...)
	}
	putStr := func(s string) {
		put32(uint32(len(s)))
		buf = append(buf, s...)
	}
	putFloats := func(fs []float32) {
		for _, f := range fs {
			put32(math.Float32bits(f))
		}
	}

	put32(blockMagic)
	putStr(b.ID.Dataset)
	put32(uint32(b.ID.Step))
	put32(uint32(b.ID.Block))
	put32(uint32(b.NI))
	put32(uint32(b.NJ))
	put32(uint32(b.NK))
	putFloats(b.Points)
	putFloats(b.Velocity)
	put32(uint32(len(names)))
	for _, n := range names {
		putStr(n)
		putFloats(b.Scalars[n])
	}
	put32(crc32.Checksum(buf, blockCRCTable))
	return buf
}

// DecodeBlock parses the format written by EncodeBlock, first verifying the
// trailing CRC32-C so corruption surfaces as ErrCorrupt rather than as a
// misparse.
func DecodeBlock(data []byte) (*grid.Block, error) {
	if len(data) < 8 {
		return nil, errors.New("storage: truncated block")
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, blockCRCTable) != want {
		return nil, ErrCorrupt
	}
	data = body
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, errors.New("storage: truncated block")
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(data) || n > 1<<20 {
			return "", errors.New("storage: truncated or oversized string")
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != blockMagic {
		return nil, fmt.Errorf("storage: bad magic %#x", magic)
	}
	dsName, err := getStr()
	if err != nil {
		return nil, err
	}
	step, err := get32()
	if err != nil {
		return nil, err
	}
	blk, err := get32()
	if err != nil {
		return nil, err
	}
	ni, err := get32()
	if err != nil {
		return nil, err
	}
	nj, err := get32()
	if err != nil {
		return nil, err
	}
	nk, err := get32()
	if err != nil {
		return nil, err
	}
	if ni < 2 || nj < 2 || nk < 2 || uint64(ni)*uint64(nj)*uint64(nk) > 1<<28 {
		return nil, fmt.Errorf("storage: implausible dims %d×%d×%d", ni, nj, nk)
	}
	b := grid.NewBlock(grid.BlockID{Dataset: dsName, Step: int(step), Block: int(blk)}, int(ni), int(nj), int(nk))
	getFloats := func(dst []float32) error {
		for i := range dst {
			v, err := get32()
			if err != nil {
				return err
			}
			dst[i] = math.Float32frombits(v)
		}
		return nil
	}
	if err := getFloats(b.Points); err != nil {
		return nil, err
	}
	if err := getFloats(b.Velocity); err != nil {
		return nil, err
	}
	nf, err := get32()
	if err != nil {
		return nil, err
	}
	if nf > 64 {
		return nil, fmt.Errorf("storage: implausible field count %d", nf)
	}
	for i := uint32(0); i < nf; i++ {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		f := b.EnsureScalar(name)
		if err := getFloats(f); err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("storage: %d trailing bytes", len(data)-off)
	}
	return b, nil
}

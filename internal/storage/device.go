package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"viracocha/internal/grid"
	"viracocha/internal/vclock"
)

// Device wraps a Backend with the cost model of a physical storage device:
// per-request latency, a transfer time of bytes/bandwidth, and a bounded
// number of concurrent channels (1 models a single disk spindle; more models
// a striped file server). All costs are charged to the clock, so under the
// virtual clock they shape the experiment timings and under the real clock
// they throttle actual execution the same way.
type Device struct {
	Name      string
	Backend   Backend
	Clock     vclock.Clock
	Latency   time.Duration
	Bandwidth float64 // bytes per second; <=0 means infinite
	// ChargeBytes overrides the byte count used for transfer-time
	// accounting, e.g. to charge paper-scale block sizes for synthetic
	// blocks. When nil the backend-reported size is charged.
	ChargeBytes func(grid.BlockID) int64
	// ReadFault, when non-nil, is consulted before every backend fetch; a
	// non-nil error fails the read as if the medium had failed (fault
	// injection — see internal/faults). The failed request still costs its
	// latency.
	ReadFault func(grid.BlockID) error
	// CorruptFault, when non-nil, marks a successful fetch as having
	// returned corrupted data (fault injection): the device treats it like a
	// failed block checksum and re-reads once before failing.
	CorruptFault func(grid.BlockID) bool

	sem   *vclock.Semaphore
	mu    sync.Mutex
	stats DeviceStats
}

// DeviceStats accumulates observed device traffic.
type DeviceStats struct {
	Loads        int64
	Errors       int64
	Bytes        int64         // charged bytes
	BusyTime     time.Duration // total time charged on the device
	LastAccess   time.Duration // clock time of the most recent completion
	CorruptReads int64         // fetches whose integrity check failed
	Rereads      int64         // recovery re-reads issued after a corrupt fetch
}

// NewDevice builds a device with the given channel count (minimum 1).
func NewDevice(name string, b Backend, c vclock.Clock, latency time.Duration, bandwidth float64, channels int) *Device {
	if channels < 1 {
		channels = 1
	}
	return &Device{
		Name:      name,
		Backend:   b,
		Clock:     c,
		Latency:   latency,
		Bandwidth: bandwidth,
		sem:       vclock.NewSemaphore(c, channels),
	}
}

// Load fetches a block at demand priority, charging latency and transfer
// time to the calling actor while one device channel is held. It returns the
// block and the charged byte count.
func (d *Device) Load(id grid.BlockID) (*grid.Block, int64, error) {
	return d.load(id, false)
}

// LoadBackground fetches a block at background (prefetch) priority: queued
// demand requests always go first, so prefetching cannot starve demand I/O.
func (d *Device) LoadBackground(id grid.BlockID) (*grid.Block, int64, error) {
	return d.load(id, true)
}

// fetch runs one integrity-checked backend fetch: the injected read fault,
// the backend itself, then the injected corruption fault (real corruption
// surfaces from the backend's DecodeBlock as ErrCorrupt already).
func (d *Device) fetch(id grid.BlockID) (*grid.Block, int64, error) {
	if d.ReadFault != nil {
		if err := d.ReadFault(id); err != nil {
			return nil, 0, err
		}
	}
	b, size, err := d.Backend.Fetch(id)
	if err != nil {
		return nil, 0, err
	}
	if d.CorruptFault != nil && d.CorruptFault(id) {
		return nil, 0, fmt.Errorf("%w (%s)", ErrCorrupt, id.String())
	}
	return b, size, nil
}

// fetchRetry is fetch with the corruption recovery policy: a corrupt read
// costs the request latency (the wasted transfer), is counted, and re-read
// exactly once; a second corrupt read fails the load.
func (d *Device) fetchRetry(id grid.BlockID) (*grid.Block, int64, error) {
	b, size, err := d.fetch(id)
	if !errors.Is(err, ErrCorrupt) {
		return b, size, err
	}
	d.Clock.Sleep(d.Latency)
	d.mu.Lock()
	d.stats.CorruptReads++
	d.stats.Rereads++
	d.mu.Unlock()
	b, size, err = d.fetch(id)
	if errors.Is(err, ErrCorrupt) {
		d.mu.Lock()
		d.stats.CorruptReads++
		d.mu.Unlock()
	}
	return b, size, err
}

func (d *Device) load(id grid.BlockID, background bool) (*grid.Block, int64, error) {
	if background {
		d.sem.AcquireLow()
	} else {
		d.sem.Acquire()
	}
	defer d.sem.Release()
	start := d.Clock.Now()
	b, size, err := d.fetchRetry(id)
	if err != nil {
		// A failed request still costs its latency (e.g. an NFS timeout).
		d.Clock.Sleep(d.Latency)
		d.mu.Lock()
		d.stats.Errors++
		d.stats.LastAccess = d.Clock.Now()
		d.mu.Unlock()
		return nil, 0, err
	}
	charged := size
	if d.ChargeBytes != nil {
		charged = d.ChargeBytes(id)
	}
	cost := d.Latency + d.transferTime(charged)
	d.Clock.Sleep(cost)
	d.mu.Lock()
	d.stats.Loads++
	d.stats.Bytes += charged
	d.stats.BusyTime += d.Clock.Now() - start
	d.stats.LastAccess = d.Clock.Now()
	d.mu.Unlock()
	return b, charged, nil
}

// LoadRun fetches a contiguous run of blocks as one device operation: the
// semaphore is held and the latency charged once, then each block's transfer
// time. It is the device half of collective I/O. On error, blocks loaded so
// far are discarded.
func (d *Device) LoadRun(ids []grid.BlockID) ([]*grid.Block, int64, error) {
	if len(ids) == 0 {
		return nil, 0, nil
	}
	d.sem.Acquire()
	defer d.sem.Release()
	start := d.Clock.Now()
	d.Clock.Sleep(d.Latency)
	out := make([]*grid.Block, len(ids))
	var total int64
	for i, id := range ids {
		b, size, err := d.fetchRetry(id)
		if err != nil {
			d.mu.Lock()
			d.stats.Errors++
			d.stats.LastAccess = d.Clock.Now()
			d.mu.Unlock()
			return nil, total, err
		}
		charged := size
		if d.ChargeBytes != nil {
			charged = d.ChargeBytes(id)
		}
		d.Clock.Sleep(d.transferTime(charged))
		out[i] = b
		total += charged
	}
	d.mu.Lock()
	d.stats.Loads += int64(len(ids))
	d.stats.Bytes += total
	d.stats.BusyTime += d.Clock.Now() - start
	d.stats.LastAccess = d.Clock.Now()
	d.mu.Unlock()
	return out, total, nil
}

func (d *Device) transferTime(bytes int64) time.Duration {
	if d.Bandwidth <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / d.Bandwidth * float64(time.Second))
}

// Saturated reports whether the device has no capacity to spare for
// background work: demand requests are queued, or every channel is busy with
// a background request already waiting. Background loads back off rather
// than add to the contention; one queued background request is allowed so a
// prefetch pipeline survives short demand bursts.
func (d *Device) Saturated() bool {
	if d.sem.HighWaiters() > 0 {
		return true
	}
	return d.sem.Free() == 0 && d.sem.LowWaiters() > 0
}

// EstimateCost predicts the uncontended time to load n bytes; the adaptive
// loader's fitness function uses it.
func (d *Device) EstimateCost(bytes int64) time.Duration {
	return d.Latency + d.transferTime(bytes)
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

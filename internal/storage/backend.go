package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"viracocha/internal/dataset"
	"viracocha/internal/grid"
)

// Backend retrieves raw blocks without any timing semantics. Device wraps a
// backend to add the cost model.
type Backend interface {
	// Fetch returns the block and the number of bytes its stored
	// representation occupies (used for transfer-time accounting when the
	// device has no explicit charge function).
	Fetch(id grid.BlockID) (*grid.Block, int64, error)
}

// GenBackend synthesizes blocks on demand from a data-set descriptor. It is
// the stand-in for the paper's pre-computed simulation files: the bytes the
// solver would have written exist only virtually, but every load yields the
// same deterministic block a file read would have.
type GenBackend struct {
	Desc *dataset.Desc
}

// Fetch generates the requested block. The reported size is the encoded
// wire size of the generated block.
func (g *GenBackend) Fetch(id grid.BlockID) (*grid.Block, int64, error) {
	if id.Dataset != g.Desc.Name {
		return nil, 0, fmt.Errorf("storage: backend holds %q, asked for %q", g.Desc.Name, id.Dataset)
	}
	if id.Step < 0 || id.Step >= g.Desc.Steps || id.Block < 0 || id.Block >= g.Desc.Blocks {
		return nil, 0, fmt.Errorf("storage: %v out of range for %s", id, g.Desc.Name)
	}
	b := g.Desc.Generate(id.Step, id.Block)
	return b, b.SizeBytes(), nil
}

// MemBackend is a concurrency-safe in-memory block store, used as the
// fastest tier in tests and as the peer-transfer source.
type MemBackend struct {
	mu     sync.RWMutex
	blocks map[grid.BlockID]*grid.Block
}

// NewMemBackend returns an empty in-memory store.
func NewMemBackend() *MemBackend {
	return &MemBackend{blocks: map[grid.BlockID]*grid.Block{}}
}

// Put stores a block.
func (m *MemBackend) Put(b *grid.Block) {
	m.mu.Lock()
	m.blocks[b.ID] = b
	m.mu.Unlock()
}

// Fetch returns the stored block or an error when absent.
func (m *MemBackend) Fetch(id grid.BlockID) (*grid.Block, int64, error) {
	m.mu.RLock()
	b, ok := m.blocks[id]
	m.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("storage: %v not in memory store", id)
	}
	return b, b.SizeBytes(), nil
}

// Len reports the number of stored blocks.
func (m *MemBackend) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}

// DirBackend reads and writes blocks as individual files under a root
// directory, named dataset/tNNN/bNNN.vrb.
type DirBackend struct {
	Root string
}

// Path returns the file path of a block ID under the backend root.
func (d *DirBackend) Path(id grid.BlockID) string {
	return filepath.Join(d.Root, fmt.Sprintf("%s", id.Dataset),
		fmt.Sprintf("t%03d", id.Step), fmt.Sprintf("b%03d.vrb", id.Block))
}

// Put encodes and writes a block file, creating directories as needed.
func (d *DirBackend) Put(b *grid.Block) error {
	p := d.Path(b.ID)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, EncodeBlock(b), 0o644)
}

// Fetch reads and decodes a block file.
func (d *DirBackend) Fetch(id grid.BlockID) (*grid.Block, int64, error) {
	data, err := os.ReadFile(d.Path(id))
	if err != nil {
		return nil, 0, err
	}
	b, err := DecodeBlock(data)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: %v: %w", id, err)
	}
	return b, int64(len(data)), nil
}

// FailingBackend wraps a backend and fails every request for IDs matched by
// Match, for fault-injection tests of the adaptive loader.
type FailingBackend struct {
	Inner Backend
	Match func(grid.BlockID) bool
	Err   error
}

// Fetch delegates to Inner unless Match fires.
func (f *FailingBackend) Fetch(id grid.BlockID) (*grid.Block, int64, error) {
	if f.Match != nil && f.Match(id) {
		err := f.Err
		if err == nil {
			err = fmt.Errorf("storage: injected failure for %v", id)
		}
		return nil, 0, err
	}
	return f.Inner.Fetch(id)
}
